"""Algorithm results and instrumentation counters.

Every algorithm in this library returns a :class:`CoverResult`: the chosen
sets, the objective values, and a :class:`Metrics` record. The metrics feed
Figure 6 of the paper ("number of patterns considered") and the runtime
tables, so they are first-class rather than debug logging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro._typing import Cost, SetId

#: The one authoritative list of Metrics fields with their (type, default).
#: Serializers everywhere — result payloads, pool IPC frames, bench report
#: entries, the obs metrics registry — derive from this instead of
#: hand-copying field names; adding a counter means adding it here and to
#: the dataclass, nowhere else.
METRIC_FIELDS: tuple[tuple[str, type, float], ...] = (
    ("sets_considered", int, 0),
    ("marginal_updates", int, 0),
    ("budget_rounds", int, 1),
    ("selections", int, 0),
    ("runtime_seconds", float, 0.0),
)


@dataclass
class Metrics:
    """Work counters accumulated during one algorithm run.

    Attributes
    ----------
    sets_considered:
        Number of candidate sets whose (marginal) benefit the algorithm
        materialized or inspected. For the pattern-optimized algorithms
        this is the paper's "patterns considered" measure (Fig. 6): every
        pattern whose benefit set was computed counts once per budget
        round it participates in, matching the paper's note that for CMC
        the counts are summed over all values of ``B``.
    marginal_updates:
        Number of per-set marginal-benefit updates performed after a
        selection.
    budget_rounds:
        Number of distinct budget values ``B`` tried (CMC only; 1 for
        single-pass algorithms).
    selections:
        Number of sets added to the output across all rounds (a CMC run
        that restarts counts selections from every round).
    runtime_seconds:
        Wall-clock time of the run as measured by the algorithm itself.
    """

    sets_considered: int = 0
    marginal_updates: int = 0
    budget_rounds: int = 1
    selections: int = 0
    runtime_seconds: float = 0.0

    def merge(self, other: "Metrics") -> "Metrics":
        """Sum counters with another run (used when composing phases)."""
        return Metrics(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name, _, _ in METRIC_FIELDS
            }
        )

    def to_dict(self) -> dict:
        """JSON-serializable counters, keyed by :data:`METRIC_FIELDS`."""
        return {name: getattr(self, name) for name, _, _ in METRIC_FIELDS}

    @classmethod
    def from_dict(cls, payload: dict | None) -> "Metrics":
        """Rebuild from :meth:`to_dict` output; missing keys take their
        schema defaults, extra keys are ignored (forward compatibility
        across pool protocol versions)."""
        payload = payload or {}
        return cls(
            **{
                name: kind(payload.get(name, default))
                for name, kind, default in METRIC_FIELDS
            }
        )


@dataclass
class CoverResult:
    """Outcome of a set-cover algorithm run.

    Attributes
    ----------
    algorithm:
        Canonical algorithm name, e.g. ``"cwsc"`` or ``"cmc"``.
    set_ids:
        Chosen sets in selection order. For pattern-level algorithms that
        never build a :class:`~repro.core.SetSystem`, ids index into
        :attr:`labels` only.
    labels:
        Per-chosen-set labels (patterns, names), parallel to
        :attr:`set_ids`.
    total_cost:
        Sum of chosen set costs.
    covered:
        Number of distinct elements covered by the union of chosen sets.
    n_elements:
        Universe size, so :attr:`coverage_fraction` is self-contained.
    feasible:
        Whether the run met its own coverage target. Algorithms with a
        fallback (e.g. CWSC returning the full-cover set) still report
        ``True``; ``False`` appears only when the caller asked for a
        best-effort result instead of an :class:`InfeasibleError`.
    params:
        The algorithm parameters that produced this result.
    metrics:
        Work counters for this run.
    """

    algorithm: str
    set_ids: tuple[SetId, ...]
    labels: tuple[Hashable, ...]
    total_cost: Cost
    covered: int
    n_elements: int
    feasible: bool
    params: dict = field(default_factory=dict)
    metrics: Metrics = field(default_factory=Metrics)

    @property
    def n_sets(self) -> int:
        """Number of sets in the solution."""
        return len(self.set_ids)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the universe covered (0.0 for an empty universe)."""
        if self.n_elements == 0:
            return 0.0
        return self.covered / self.n_elements

    def summary(self) -> str:
        """One-line human-readable description of the result."""
        return (
            f"{self.algorithm}: {self.n_sets} sets, cost={self.total_cost:g}, "
            f"coverage={self.covered}/{self.n_elements} "
            f"({self.coverage_fraction:.1%}), feasible={self.feasible}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation of the result.

        Labels are stringified with ``repr`` (patterns round-trip as
        their canonical text); metrics become a nested dict. Params keep
        scalars and one-level dicts of scalars (e.g. the sharding
        provenance) — anything deeper or non-JSON is dropped.
        """
        return {
            "algorithm": self.algorithm,
            "set_ids": list(self.set_ids),
            "labels": [repr(label) for label in self.labels],
            "total_cost": self.total_cost,
            "covered": self.covered,
            "n_elements": self.n_elements,
            "coverage_fraction": self.coverage_fraction,
            "feasible": self.feasible,
            "params": {
                key: value
                for key, value in self.params.items()
                if _wire_safe(value)
            },
            "metrics": self.metrics.to_dict(),
        }


_SCALAR_TYPES = (int, float, str, bool, type(None))


def _wire_safe(value) -> bool:
    """True if a params value survives the JSON wire unchanged."""
    if isinstance(value, _SCALAR_TYPES):
        return True
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and isinstance(v, _SCALAR_TYPES)
            for k, v in value.items()
        )
    return False


def result_from_dict(payload: dict) -> CoverResult:
    """Rebuild a :class:`CoverResult` from :meth:`CoverResult.to_dict`.

    The round-trip is intentionally lossy in the same places ``to_dict``
    is: labels come back as their ``repr`` strings and only wire-safe
    params (scalars and flat dicts of scalars) survive. That is
    sufficient for experiment checkpoints, whose consumers read costs,
    coverage, and metrics — not live label objects.
    """
    metrics = Metrics.from_dict(payload.get("metrics"))
    return CoverResult(
        algorithm=payload["algorithm"],
        set_ids=tuple(payload["set_ids"]),
        labels=tuple(payload["labels"]),
        total_cost=payload["total_cost"],
        covered=payload["covered"],
        n_elements=payload["n_elements"],
        feasible=payload["feasible"],
        params=dict(payload.get("params", {})),
        metrics=metrics,
    )


def make_result(
    algorithm: str,
    chosen: Sequence[SetId],
    labels: Sequence[Hashable],
    total_cost: Cost,
    covered: int,
    n_elements: int,
    feasible: bool,
    params: dict,
    metrics: Metrics,
) -> CoverResult:
    """Normalize sequences into a :class:`CoverResult`."""
    return CoverResult(
        algorithm=algorithm,
        set_ids=tuple(chosen),
        labels=tuple(labels),
        total_cost=total_cost,
        covered=covered,
        n_elements=n_elements,
        feasible=feasible,
        params=dict(params),
        metrics=metrics,
    )
