"""Columnar packed coverage kernel (numpy ``uint64``) — the third backend.

The big-int bitset kernel (:mod:`repro.core.bitset`) wins by packing one
set's elements into one arbitrary-precision integer, but every *sweep*
over candidates is still a Python loop: one ``&``/``bit_count`` pair per
live set. Past ~10\\ :sup:`4` elements that loop dominates. This module
goes one layer lower: the whole system becomes a columnar
``(n_sets, ceil(n/64))`` matrix of ``uint64`` words, stored dense when
small enough and CSR-blocked by density otherwise (only a set's nonzero
words are kept), so a selection updates *every* live marginal with a
handful of vectorized gather / AND / ``np.bitwise_count`` / ``bincount``
passes — no per-set Python at all.

Three layers:

* :class:`PackedLayout` — the immutable columnar form of one
  :class:`~repro.core.setsystem.SetSystem` (word matrix, per-set cached
  popcounts, element->owners CSR), built once per system and weakly
  cached (:func:`packed_layout`). Because the pool worker LRU caches
  deserialized systems by sha256 fingerprint
  (:data:`repro.resilience.pool.protocol.SYSTEM_CACHE_SIZE`), repeat
  tenants and bench warmups reuse the layout through the same path.
  :meth:`PackedLayout.shard` restricts a layout to an element range
  ``[lo, hi)`` — the unit of universe sharding
  (:mod:`repro.resilience.pool.sharded`).
* :class:`PackedMarginalTracker` — the drop-in tracker
  (:func:`repro.core.marginal.make_tracker` backend ``"packed"``): same
  API, same selections, same :class:`~repro.core.result.Metrics`
  counters as the ``set`` and ``bitset`` backends, property-tested in
  ``tests/property/test_props_bitset.py``.
* :class:`VectorSelectMixin` — vectorized argmax helpers
  (:meth:`~VectorSelectMixin.best_gain_candidate` for CWSC's
  threshold/gain selection, :meth:`~VectorSelectMixin.best_benefit_in`
  for CMC's per-level selection) that reproduce the exact lexicographic
  tie-breaks of :mod:`repro.core.greedy_common`, shared with the
  parent-side sharded tracker.

numpy is optional: everything degrades behind :data:`HAVE_NUMPY`
(``np.bitwise_count`` requires numpy >= 2.0), and requesting the packed
backend without it raises
:class:`~repro.errors.ValidationError` instead of importing lazily and
crashing mid-solve.

Nothing here imports :mod:`repro.core.setsystem` — builders duck-type
``system.n_elements`` / ``system.sets`` exactly like the bitset kernel —
so :meth:`SetSystem.coverage_of` can consult :func:`cached_layout`
without an import cycle.
"""

from __future__ import annotations

import weakref
from typing import Iterable

from repro._typing import ElementId, SetId
from repro.core.greedy_common import canonical_keys
from repro.core.result import Metrics
from repro.errors import ValidationError
from repro.obs import trace as obs_trace

try:  # pragma: no cover - exercised via HAVE_NUMPY gating
    import numpy as np
except ImportError:  # pragma: no cover - container always ships numpy
    np = None  # type: ignore[assignment]

#: Whether the packed kernel is usable: numpy >= 2.0 (vectorized
#: ``np.bitwise_count``) must be importable.
HAVE_NUMPY = bool(np is not None and hasattr(np, "bitwise_count"))

__all__ = [
    "HAVE_NUMPY",
    "DENSE_BYTE_CAP",
    "PackedLayout",
    "PackedMarginalTracker",
    "VectorSelectMixin",
    "assign_levels",
    "cached_layout",
    "canonical_ranks",
    "packed_layout",
    "shard_layout",
]

#: Above this many bytes the dense ``(n_sets, n_words)`` matrix is
#: replaced by the CSR-blocked form (only nonzero words stored). The
#: paper-scale instances are extremely sparse (density ~1e-4 at
#: n = 10^5), where dense would need gigabytes for megabytes of data.
DENSE_BYTE_CAP = 32 * 1024 * 1024


def _require_numpy(what: str) -> None:
    if not HAVE_NUMPY:
        raise ValidationError(
            f"{what} requires numpy >= 2.0 (np.bitwise_count); "
            "install numpy or use the 'set'/'bitset' backends"
        )


def _mask_elements(words) -> "np.ndarray":
    """Set-bit positions of a little-endian ``uint64`` word vector."""
    if words.size == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(
        np.ascontiguousarray(words, dtype="<u8").view(np.uint8),
        bitorder="little",
    )
    return np.nonzero(bits)[0].astype(np.int64)


def _gather_ranges(starts, ends) -> "np.ndarray":
    """Concatenated ``arange(starts[i], ends[i])`` without a Python loop."""
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(
        ([0], np.cumsum(lengths)[:-1])
    )
    return np.repeat(starts - offsets, lengths) + np.arange(
        total, dtype=np.int64
    )


class PackedLayout:
    """Columnar word-packed form of one set system (immutable).

    Attributes
    ----------
    n_elements, n_words, n_sets:
        Universe size, ``ceil(n_elements / 64)``, and set count.
    elem_offset:
        Global id of local element 0 (nonzero only for shard layouts).
    sizes:
        ``int64[n_sets]`` — per-set cached popcounts (``|Ben(s)|``
        restricted to this layout's element range).
    costs:
        ``float64[n_sets]`` — per-set costs (global, shared by shards).
    data, cols, rows, indptr:
        The CSR-blocked matrix: nonzero words in set-id-major,
        word-ascending order. ``indptr[s]:indptr[s+1]`` slices set
        ``s``'s words.
    dense:
        The full ``(n_sets, n_words)`` ``uint64`` matrix, present only
        when it fits :data:`DENSE_BYTE_CAP`; sweeps then broadcast over
        it instead of gathering through CSR.
    owners_data, owners_indptr:
        Element->owning-set-ids CSR (the inverted index, packed).
    """

    __slots__ = (
        "n_elements", "n_words", "n_sets", "elem_offset",
        "sizes", "costs", "data", "cols", "rows", "indptr",
        "dense", "owners_data", "owners_indptr", "__weakref__",
    )

    def __init__(
        self, n_elements, n_sets, elem_offset, sizes, costs,
        data, cols, rows, indptr, owners_data, owners_indptr,
        dense_byte_cap=DENSE_BYTE_CAP,
    ) -> None:
        self.n_elements = int(n_elements)
        self.n_words = (self.n_elements + 63) >> 6
        self.n_sets = int(n_sets)
        self.elem_offset = int(elem_offset)
        self.sizes = sizes
        self.costs = costs
        self.data = data
        self.cols = cols
        self.rows = rows
        self.indptr = indptr
        self.owners_data = owners_data
        self.owners_indptr = owners_indptr
        self.dense = None
        if self.n_sets * self.n_words * 8 <= dense_byte_cap:
            dense = np.zeros((self.n_sets, self.n_words), dtype=np.uint64)
            dense[rows, cols] = data
            self.dense = dense

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, system, dense_byte_cap: int = DENSE_BYTE_CAP
              ) -> "PackedLayout":
        """Pack a set system directly from its benefit sets.

        Deliberately does *not* go through the big-int mask table: at
        n = 10^5 that table costs ~46 s to build, while this scatter
        build is a single ``argsort`` + ``reduceat`` over the
        (set, element) pairs.
        """
        _require_numpy("PackedLayout")
        sets = system.sets
        n = int(system.n_elements)
        m = len(sets)
        set_sizes = np.fromiter(
            (ws.size for ws in sets), dtype=np.int64, count=m
        )
        costs = np.fromiter(
            (ws.cost for ws in sets), dtype=np.float64, count=m
        )
        total = int(set_sizes.sum())
        els = np.fromiter(
            (e for ws in sets for e in ws.benefit),
            dtype=np.int64,
            count=total,
        )
        if els.size and (els.min() < 0 or els.max() >= n):
            raise ValidationError(
                "benefit element outside universe "
                f"[0, {n}) while packing the columnar layout"
            )
        rows = np.repeat(np.arange(m, dtype=np.int64), set_sizes)
        return cls._from_pairs(
            n, m, 0, rows, els, set_sizes, costs, dense_byte_cap
        )

    @classmethod
    def _from_pairs(
        cls, n, m, elem_offset, rows, els, sizes, costs, dense_byte_cap
    ) -> "PackedLayout":
        """Build from unique (set_id, local element) pairs."""
        n_words = (n + 63) >> 6
        words = els >> 6
        key = rows * max(1, n_words) + words
        order = np.argsort(key, kind="stable")
        key = key[order]
        bits = np.left_shift(
            np.uint64(1), (els[order] & 63).astype(np.uint64)
        )
        if key.size:
            boundary = np.empty(key.size, dtype=bool)
            boundary[0] = True
            np.not_equal(key[1:], key[:-1], out=boundary[1:])
            starts = np.nonzero(boundary)[0]
            data = np.bitwise_or.reduceat(bits, starts)
            unique_key = key[starts]
            out_rows = (unique_key // max(1, n_words)).astype(np.int64)
            out_cols = (unique_key % max(1, n_words)).astype(np.int64)
        else:
            data = np.empty(0, dtype=np.uint64)
            out_rows = np.empty(0, dtype=np.int64)
            out_cols = np.empty(0, dtype=np.int64)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows, minlength=m), out=indptr[1:])
        owners_order = np.argsort(els, kind="stable")
        owners_data = rows[owners_order]
        owners_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(els, minlength=n), out=owners_indptr[1:])
        layout = cls(
            n, m, elem_offset, sizes, costs, data, out_cols, out_rows,
            indptr, owners_data, owners_indptr, dense_byte_cap,
        )
        _layout_build_counter().inc(
            form="dense" if layout.dense is not None else "csr"
        )
        return layout

    # ------------------------------------------------------------------
    @property
    def nnz_words(self) -> int:
        """Stored (nonzero) words; the cost unit of one CSR sweep."""
        return int(self.data.size)

    def row_words(self, set_id: SetId) -> "np.ndarray":
        """Set ``set_id``'s benefit as a fresh ``uint64[n_words]``."""
        if self.dense is not None:
            return self.dense[set_id].copy()
        out = np.zeros(self.n_words, dtype=np.uint64)
        start, end = self.indptr[set_id], self.indptr[set_id + 1]
        out[self.cols[start:end]] = self.data[start:end]
        return out

    def union_words(self, set_ids: Iterable[SetId]) -> "np.ndarray":
        """Packed union of the benefits of a collection of sets."""
        out = np.zeros(self.n_words, dtype=np.uint64)
        for set_id in set_ids:
            start, end = self.indptr[set_id], self.indptr[set_id + 1]
            np.bitwise_or.at(out, self.cols[start:end], self.data[start:end])
        return out

    def coverage_of(self, set_ids: Iterable[SetId]) -> int:
        """``|union of benefits|`` for a collection of sets."""
        return int(
            np.bitwise_count(self.union_words(set_ids)).sum()
        )

    def elements_of(self, set_id: SetId) -> "np.ndarray":
        """Global element ids of ``Ben(set_id)`` within this layout."""
        return _mask_elements(self.row_words(set_id)) + self.elem_offset

    # ------------------------------------------------------------------
    def shard(self, lo: int, hi: int,
              dense_byte_cap: int = DENSE_BYTE_CAP) -> "PackedLayout":
        """Restrict to the global element range ``[lo, hi)``.

        The shard keeps *global* set ids and costs (so shard-merge
        arithmetic indexes one shared id space) but re-bases elements to
        ``lo`` rounded down to a word boundary, masking partial boundary
        words. An empty range yields a layout where every set has size 0
        — a legal, always-exhausted shard.
        """
        lo = max(0, min(int(lo), self.n_elements))
        hi = max(lo, min(int(hi), self.n_elements))
        word_lo = lo >> 6
        word_hi = (hi + 63) >> 6
        keep = (self.cols >= word_lo) & (self.cols < word_hi)
        data = self.data[keep].copy()
        cols = self.cols[keep] - word_lo
        rows = self.rows[keep]
        # Mask elements outside [lo, hi) in the boundary words.
        if lo & 63:
            head = np.uint64(~((np.uint64(1) << np.uint64(lo & 63))
                               - np.uint64(1)))
            data[cols == 0] &= head
        if hi & 63 and word_hi > word_lo:
            tail = np.uint64((np.uint64(1) << np.uint64(hi & 63))
                             - np.uint64(1))
            data[cols == word_hi - 1 - word_lo] &= tail
        nonzero = data != 0
        data, cols, rows = data[nonzero], cols[nonzero], rows[nonzero]
        counts = np.bitwise_count(data).astype(np.int64)
        sizes = np.bincount(
            rows, weights=counts, minlength=self.n_sets
        ).astype(np.int64)
        indptr = np.zeros(self.n_sets + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=self.n_sets), out=indptr[1:])
        n_local = max(0, hi - (word_lo << 6))
        # Owners for the local element range: expand the shard's words
        # back to (set, element) pairs. Cheap relative to worker spawn.
        if data.size:
            per_word_elements = [
                _mask_elements(np.asarray([word], dtype=np.uint64))
                for word in data
            ]
            lens = np.fromiter(
                (chunk.size for chunk in per_word_elements),
                dtype=np.int64, count=len(per_word_elements),
            )
            pair_els = (
                np.concatenate(per_word_elements)
                + np.repeat(cols.astype(np.int64) << 6, lens)
            )
            pair_rows = np.repeat(rows, lens)
            owners_order = np.argsort(pair_els, kind="stable")
            owners_data = pair_rows[owners_order]
            owners_indptr = np.zeros(n_local + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(pair_els, minlength=n_local),
                out=owners_indptr[1:],
            )
        else:
            owners_data = np.empty(0, dtype=np.int64)
            owners_indptr = np.zeros(n_local + 1, dtype=np.int64)
        return PackedLayout(
            n_local, self.n_sets, self.elem_offset + (word_lo << 6),
            sizes, self.costs, data, cols, rows, indptr,
            owners_data, owners_indptr, dense_byte_cap,
        )


# ----------------------------------------------------------------------
# Per-system caches (the weak-cache idiom of bitset.py / greedy_common)
# ----------------------------------------------------------------------
_LAYOUT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SHARD_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_RANKS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_BUILD_COUNTER = None
_SELECT_COUNTER = None


def _layout_build_counter():
    global _BUILD_COUNTER
    if _BUILD_COUNTER is None:
        from repro.obs.metrics import get_registry

        _BUILD_COUNTER = get_registry().counter(
            "scwsc_packed_layout_builds_total",
            "Columnar packed layouts built (cache misses), by form",
        )
    return _BUILD_COUNTER


def _select_counter():
    global _SELECT_COUNTER
    if _SELECT_COUNTER is None:
        from repro.obs.metrics import get_registry

        _SELECT_COUNTER = get_registry().counter(
            "scwsc_packed_selects_total",
            "Packed-tracker selections, by update strategy",
        )
    return _SELECT_COUNTER


def packed_layout(system) -> PackedLayout:
    """The (weakly cached) :class:`PackedLayout` of a set system."""
    try:
        layout = _LAYOUT_CACHE.get(system)
    except TypeError:  # unhashable/unweakrefable stand-in: build fresh
        return PackedLayout.build(system)
    if layout is None:
        layout = PackedLayout.build(system)
        try:
            _LAYOUT_CACHE[system] = layout
        except TypeError:  # pragma: no cover - stand-in objects only
            pass
    return layout


def cached_layout(system) -> PackedLayout | None:
    """The cached layout if one exists; never triggers a build.

    :meth:`SetSystem.coverage_of` consults this first so that a
    packed-only run never pays for the big-int mask table.
    """
    if not HAVE_NUMPY:
        return None
    try:
        return _LAYOUT_CACHE.get(system)
    except TypeError:
        return None


def shard_layout(system, lo: int, hi: int) -> PackedLayout:
    """The (weakly cached) shard layout of ``system`` over ``[lo, hi)``.

    Keyed per system object; the pool worker's fingerprint LRU
    (:mod:`repro.resilience.pool.protocol`) keeps the system alive
    across requests, so repeat tenants reuse their shard slices too.
    """
    key = (int(lo), int(hi))
    try:
        per_system = _SHARD_CACHE.get(system)
    except TypeError:
        return packed_layout(system).shard(lo, hi)
    if per_system is None:
        per_system = {}
        try:
            _SHARD_CACHE[system] = per_system
        except TypeError:  # pragma: no cover - stand-in objects only
            pass
    layout = per_system.get(key)
    if layout is None:
        layout = per_system[key] = packed_layout(system).shard(lo, hi)
    return layout


def canonical_ranks(system) -> "np.ndarray":
    """``int64[n_sets]`` ranking sets by their canonical tie-break key.

    ``ranks[a] < ranks[b]`` iff ``canonical_key(a) < canonical_key(b)``
    — canonical keys embed the set id, so the order is total and the
    rank comparison reproduces the key comparison exactly. Weakly
    cached; building it costs one sort over the (cached) keys.
    """
    try:
        ranks = _RANKS_CACHE.get(system)
    except TypeError:
        ranks = None
    if ranks is not None:
        return ranks
    keys = canonical_keys(system)
    order = sorted(range(len(keys)), key=keys.__getitem__)
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(
        len(keys), dtype=np.int64
    )
    try:
        _RANKS_CACHE[system] = ranks
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return ranks


def assign_levels(costs, scheme) -> "np.ndarray":
    """Vectorized :meth:`~repro.core.budget.LevelScheme.level_of`.

    Returns ``int64[n_sets]`` with ``-1`` for unaffordable sets; agrees
    with ``level_of`` element-wise (property-tested). Bounds are
    contiguous and descending, so the level is a ``searchsorted`` count
    of lower bounds strictly below the cost.
    """
    lower_desc = np.asarray(scheme.lower_bounds, dtype=np.float64)
    ascending = lower_desc[::-1]
    below = np.searchsorted(ascending, costs, side="left")
    levels = (scheme.n_levels - below).astype(np.int64)
    # cost <= lower_bounds[-1] (only cost == 0) lands past the end:
    # clamp to the cheapest level, exactly like level_of.
    np.minimum(levels, scheme.n_levels - 1, out=levels)
    levels[costs > scheme.budget] = -1
    return levels


# ----------------------------------------------------------------------
# Vectorized argmax helpers (shared with the sharded parent tracker)
# ----------------------------------------------------------------------
class VectorSelectMixin:
    """Vectorized greedy argmax over ``_counts`` / ``_live`` arrays.

    Host classes provide ``_counts`` (``int64[m]``, 0 for dead sets),
    ``_live`` (``bool[m]``), ``_costs_array()`` and ``_system``. Both
    helpers reproduce the exact lexicographic orders of
    :func:`repro.core.greedy_common.gain_key` /
    :func:`~repro.core.greedy_common.benefit_key`: numpy's float64
    division and comparisons are IEEE-identical to CPython's, and
    :func:`canonical_ranks` reproduces the canonical-key order.
    """

    _canon_ranks = None

    def _get_ranks(self):
        ranks = self._canon_ranks
        if ranks is None:
            ranks = self._canon_ranks = canonical_ranks(self._system)
        return ranks

    def best_gain_candidate(self, threshold: float) -> SetId | None:
        """Argmax of ``gain_key`` over live sets with size >= threshold.

        The CWSC selection step (Fig. 2 lines 5-6): maximize marginal
        gain, ties to larger benefit, then lower cost, then the
        canonical key.
        """
        counts = self._counts
        eligible = self._live & (counts >= threshold)
        if not eligible.any():
            return None
        costs = self._costs_array()
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            gains = np.where(eligible, counts / costs, -np.inf)
        best = gains.max()
        candidates = np.nonzero(gains == best)[0]
        if candidates.size > 1:
            sizes = counts[candidates]
            candidates = candidates[sizes == sizes.max()]
        if candidates.size > 1:
            cand_costs = costs[candidates]
            candidates = candidates[cand_costs == cand_costs.min()]
        if candidates.size > 1:
            ranks = self._get_ranks()[candidates]
            return int(candidates[ranks.argmin()])
        return int(candidates[0])

    def best_benefit_in(self, member_ids) -> SetId | None:
        """Argmax of ``benefit_key`` over live sets among ``member_ids``.

        The CMC per-level selection step: maximize marginal benefit,
        ties to lower cost, then the canonical key. ``member_ids`` is a
        precomputed ``int64`` id array (one cost level).
        """
        ids = member_ids[self._live[member_ids]]
        if ids.size == 0:
            return None
        sizes = self._counts[ids]
        ids = ids[sizes == sizes.max()]
        if ids.size > 1:
            costs = self._costs_array()[ids]
            ids = ids[costs == costs.min()]
        if ids.size > 1:
            ranks = self._get_ranks()[ids]
            return int(ids[ranks.argmin()])
        return int(ids[0])


# ----------------------------------------------------------------------
# The tracker
# ----------------------------------------------------------------------
class PackedMarginalTracker(VectorSelectMixin):
    """Columnar drop-in for the ``set``/``bitset`` marginal trackers.

    Same API, same selections, same metrics counters
    (``marginal_updates`` counts, for every live candidate, the exact
    ``|newly & Ben(candidate)|`` decrement — the invariant all three
    backends share). ``layout`` lets the sharded pool substitute a
    shard-restricted layout; set ids and costs stay global either way.
    """

    backend_name = "packed"

    def __init__(
        self,
        system,
        restrict_to: Iterable[SetId] | None = None,
        metrics: Metrics | None = None,
        layout: PackedLayout | None = None,
    ) -> None:
        _require_numpy("PackedMarginalTracker")
        self._system = system
        self._metrics = metrics if metrics is not None else Metrics()
        self._layout = layout if layout is not None else packed_layout(system)
        tracked = self._layout.sizes > 0
        if restrict_to is not None:
            keep = np.zeros(self._layout.n_sets, dtype=bool)
            for set_id in restrict_to:
                keep[set_id] = True
            tracked = tracked & keep
        self._tracked = tracked
        self._n_tracked = int(tracked.sum())
        self._counts = np.zeros(self._layout.n_sets, dtype=np.int64)
        self._live = np.zeros(self._layout.n_sets, dtype=bool)
        self._covered = np.zeros(self._layout.n_words, dtype=np.uint64)
        self._covered_count = 0
        #: True between a reset and the first mutation; the CMC driver
        #: uses it to avoid double-counting ``sets_considered`` when a
        #: caller injects a freshly built tracker.
        self.fresh = False
        self.reset()

    def _costs_array(self):
        return self._layout.costs

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the empty-solution state (new CMC budget round)."""
        np.multiply(
            self._layout.sizes, self._tracked, out=self._counts
        )
        np.copyto(self._live, self._tracked)
        self._covered[:] = 0
        self._covered_count = 0
        self._metrics.sets_considered += self._n_tracked
        self.fresh = True

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Metrics:
        """The metrics object this tracker accounts work into."""
        return self._metrics

    @property
    def covered(self) -> frozenset[ElementId]:
        """Elements covered by all selections so far this round."""
        return frozenset(
            (_mask_elements(self._covered) + self._layout.elem_offset)
            .tolist()
        )

    @property
    def covered_count(self) -> int:
        """``|covered|`` without copying."""
        return self._covered_count

    @property
    def costs(self) -> "np.ndarray":
        """Per-set costs, for vectorized level assignment."""
        return self._layout.costs

    @property
    def live_ids(self) -> list[SetId]:
        """Ids of sets with non-empty marginal benefit, ascending."""
        return np.nonzero(self._live)[0].tolist()

    def live_items(self) -> list[tuple[SetId, int]]:
        """``(set_id, |MBen|)`` pairs for all live sets."""
        ids = np.nonzero(self._live)[0]
        return list(zip(ids.tolist(), self._counts[ids].tolist()))

    def __contains__(self, set_id: SetId) -> bool:
        return bool(self._live[set_id])

    def __len__(self) -> int:
        return int(self._live.sum())

    def marginal_size(self, set_id: SetId) -> int:
        """``|MBen(s, S)|`` for a live set; 0 for an evicted one."""
        return int(self._counts[set_id])

    def marginal_benefit(self, set_id: SetId) -> frozenset[ElementId]:
        """A snapshot of ``MBen(s, S)``, materialized on demand."""
        if not self._live[set_id]:
            return frozenset()
        remaining = self._layout.row_words(set_id) & ~self._covered
        return frozenset(
            (_mask_elements(remaining) + self._layout.elem_offset).tolist()
        )

    def marginal_gain(self, set_id: SetId) -> float:
        """``MGain(s, S) = |MBen(s, S)| / Cost(s)``."""
        size = int(self._counts[set_id])
        cost = float(self._layout.costs[set_id])
        if cost == 0:
            return float("inf") if size else 0.0
        return size / cost

    def drop(self, set_id: SetId) -> None:
        """Remove a set from consideration without selecting it."""
        self.fresh = False
        self._live[set_id] = False
        self._counts[set_id] = 0

    # ------------------------------------------------------------------
    def select(self, set_id: SetId) -> int:
        """Mark a set as chosen; returns the number of newly covered.

        One vectorized update pass over all live marginals, choosing
        between two strategies by exact cost (both apply identical
        decrements, so ``marginal_updates`` stays backend-identical):

        * **owners gather** — gather the owner lists of the newly
          covered elements through the element->sets CSR and histogram
          them (cheap when few elements flip);
        * **mask sweep** — AND the newly-covered words against the
          whole columnar matrix and popcount (one broadcasted pass;
          cheap when the flip is wide).
        """
        newly, overlap, strategy = self._apply_select(set_id)
        if newly:
            self._finish_select(set_id, newly, overlap, strategy)
        return newly

    def select_with_deltas(
        self, set_id: SetId
    ) -> tuple[int, list[int], list[int]]:
        """Shard-worker select: also report per-set overlap deltas.

        Returns ``(newly, ids, overlaps)`` where ``ids`` are the live
        sets whose marginal counts just dropped and ``overlaps`` the
        amounts. The sharded supervisor sums these across shards to
        maintain the exact global marginal vector.
        """
        newly, overlap, strategy = self._apply_select(set_id)
        if not newly:
            return 0, [], []
        ids = np.nonzero(overlap)[0]
        deltas = overlap[ids]
        self._finish_select(set_id, newly, overlap, strategy)
        return newly, ids.tolist(), deltas.tolist()

    def _apply_select(self, set_id: SetId):
        """Pop the set, flip its new elements, compute live overlaps."""
        self.fresh = False
        layout = self._layout
        self._metrics.selections += 1
        self._live[set_id] = False
        self._counts[set_id] = 0
        newly_words = layout.row_words(set_id)
        np.bitwise_and(newly_words, ~self._covered, out=newly_words)
        newly = int(np.bitwise_count(newly_words).sum())
        if not newly:
            return 0, None, None
        self._covered |= newly_words
        self._covered_count += newly
        elements = _mask_elements(newly_words)
        owner_pairs = int(
            (layout.owners_indptr[elements + 1]
             - layout.owners_indptr[elements]).sum()
        )
        sweep_cost = (
            layout.n_sets * layout.n_words
            if layout.dense is not None
            else layout.nnz_words
        )
        if owner_pairs <= sweep_cost:
            strategy = "owners_gather"
            touched = layout.owners_data[
                _gather_ranges(
                    layout.owners_indptr[elements],
                    layout.owners_indptr[elements + 1],
                )
            ]
            overlap = np.bincount(touched, minlength=layout.n_sets)
        elif layout.dense is not None:
            strategy = "mask_sweep"
            overlap = (
                np.bitwise_count(layout.dense & newly_words[None, :])
                .sum(axis=1)
                .astype(np.int64)
            )
        else:
            strategy = "mask_sweep"
            hits = layout.data & newly_words[layout.cols]
            overlap = np.bincount(
                layout.rows,
                weights=np.bitwise_count(hits).astype(np.int64),
                minlength=layout.n_sets,
            ).astype(np.int64)
        # Only live candidates take decrements (matching the dict-based
        # backends, where evicted sets are simply absent).
        overlap = np.where(self._live, overlap, 0).astype(np.int64)
        return newly, overlap, strategy

    def _finish_select(self, set_id, newly, overlap, strategy) -> None:
        updates = int(overlap.sum())
        self._counts -= overlap
        np.logical_and(self._live, self._counts > 0, out=self._live)
        self._metrics.marginal_updates += updates
        _select_counter().inc(strategy=strategy)
        if obs_trace.enabled():
            obs_trace.event(
                "tracker_update",
                backend="packed",
                strategy=strategy,
                set_id=set_id,
                newly_covered=newly,
                updates=updates,
                live=int(self._live.sum()),
            )
