"""Side-by-side algorithm comparison on one instance.

A convenience layer for users choosing between CWSC and CMC on their own
data: run every applicable algorithm with one call and get a rendered
table of cost / size / coverage / runtime, plus the LP lower bound as a
quality yardstick when the instance is small enough to afford it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.lp_bound import lp_lower_bound
from repro.core.result import CoverResult
from repro.core.setsystem import SetSystem
from repro.errors import ReproError
from repro.experiments.reporting import format_table
from repro.patterns.costs import CostFunction
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.table import PatternTable

#: Instances with at most this many sets also get an LP lower bound.
LP_BOUND_MAX_SETS = 5_000


def selection_curve(
    system: SetSystem, result: CoverResult
) -> list[dict]:
    """Per-prefix coverage/cost of a solution, in selection order.

    Entry ``i`` describes the first ``i + 1`` selections: cumulative
    covered elements, coverage fraction, cumulative cost, and the
    marginal contribution of the ``i``-th set. Useful for explaining a
    summary ("the first two patterns already cover 80%") and for plotting
    greedy saturation curves.
    """
    covered: set[int] = set()
    cost = 0.0
    curve: list[dict] = []
    for set_id in result.set_ids:
        ws = system[set_id]
        newly = len(ws.benefit - covered)
        covered |= ws.benefit
        cost += ws.cost
        curve.append(
            {
                "set_id": set_id,
                "label": ws.label,
                "marginal_covered": newly,
                "covered": len(covered),
                "coverage_fraction": (
                    len(covered) / system.n_elements
                    if system.n_elements
                    else 0.0
                ),
                "cost": cost,
            }
        )
    return curve


@dataclass
class Comparison:
    """Outcome of :func:`compare_algorithms`."""

    results: dict[str, CoverResult]
    lp_bound: float | None

    def render(self) -> str:
        """Rendered comparison table."""
        headers = [
            "algorithm", "sets", "cost", "coverage", "seconds",
            "patterns considered",
        ]
        rows = []
        for name, result in self.results.items():
            rows.append(
                [
                    name,
                    result.n_sets,
                    result.total_cost,
                    f"{result.coverage_fraction:.1%}",
                    result.metrics.runtime_seconds,
                    result.metrics.sets_considered,
                ]
            )
        text = format_table(headers, rows)
        if self.lp_bound is not None:
            text += f"\nLP lower bound on optimal cost: {self.lp_bound:g}"
        return text


def compare_algorithms(
    table: PatternTable,
    k: int,
    s_hat: float,
    cost: "str | CostFunction" = "max",
    b: float = 1.0,
    eps: float = 1.0,
    include_unoptimized: bool = True,
    include_lp_bound: bool = True,
) -> Comparison:
    """Run CWSC and CMC (optimized, optionally unoptimized) on a table.

    Parameters
    ----------
    include_unoptimized:
        Also run the enumeration-based algorithms (slow on big tables).
    include_lp_bound:
        Compute the LP lower bound when the enumerated system is small
        enough (see :data:`LP_BOUND_MAX_SETS`); requires
        ``include_unoptimized``.
    """
    results: dict[str, CoverResult] = {}
    results["optimized_cwsc"] = optimized_cwsc(
        table, k, s_hat, cost=cost, on_infeasible="full_cover"
    )
    results["optimized_cmc"] = optimized_cmc(
        table, k, s_hat, b=b, cost=cost, eps=eps
    )

    lp_bound: float | None = None
    if include_unoptimized:
        system = build_set_system(table, cost)
        results["cwsc"] = cwsc(system, k, s_hat, on_infeasible="full_cover")
        results["cmc"] = cmc_epsilon(system, k, s_hat, b=b, eps=eps)
        if include_lp_bound and system.n_sets <= LP_BOUND_MAX_SETS:
            try:
                lp_bound = lp_lower_bound(system, k, s_hat)
            except ReproError:
                lp_bound = None
    return Comparison(results=results, lp_bound=lp_bound)
