"""Executable versions of the paper's hardness reductions (Section IV)."""

from repro.hardness.reduction import (
    lemma1_table,
    theorem1_system,
    theorem3_reduction,
    vertex_patterns,
)
from repro.hardness.vertex_cover import (
    greedy_matching_vertex_cover,
    is_vertex_cover,
    min_vertex_cover_exact,
)

__all__ = [
    "greedy_matching_vertex_cover",
    "is_vertex_cover",
    "lemma1_table",
    "min_vertex_cover_exact",
    "theorem1_system",
    "theorem3_reduction",
    "vertex_patterns",
]
