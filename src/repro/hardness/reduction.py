"""The paper's hardness reductions, made executable.

* :func:`lemma1_table` — Lemma 1: vertex cover in a tripartite graph
  ``G = (A, B, C)`` with ``m`` edges becomes a 3-attribute pattern table
  with ``m + 1`` records. Each edge yields a record padded with one of the
  fresh symbols ``x, y, z`` and measure ``tau``; one extra record
  ``(x, y, z)`` has measure ``W > tau``. With coverage fraction
  ``m / (m + 1)`` and ``max``-costs, the fewest patterns of cost at most
  ``tau`` that reach the coverage equals the minimum vertex cover.
* :func:`theorem1_system` — Theorem 1's gadget on top of Lemma 1: patterns
  costing more than ``tau`` get cost infinity, every other pattern cost 1,
  turning minimum-cost into minimum-count.
* :func:`theorem3_reduction` — Theorem 3: any arbitrary weighted set
  system over ``n`` elements becomes a patterned system over an
  ``n``-attribute 0/1 table where each input set's pattern covers exactly
  the same elements.

These let the test suite *verify* the constructions the proofs rely on
(benefit preservation, cost thresholds, optimum equality on small
instances) rather than taking them on faith.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.core.setsystem import SetSystem, WeightedSet
from repro.errors import ValidationError
from repro.patterns.pattern import ALL, Pattern
from repro.patterns.table import PatternTable


def lemma1_table(
    graph: nx.Graph, tau: float = 1.0, big_w: float = 10.0
) -> tuple[PatternTable, float]:
    """Build the Lemma 1 table from a tripartite graph.

    Parameters
    ----------
    graph:
        A tripartite graph whose nodes are ``(part, index)`` with part in
        ``{"a", "b", "c"}`` (see :mod:`repro.datasets.tripartite`).
    tau:
        Measure of every edge record (the cost threshold of the lemma).
    big_w:
        Measure of the extra ``(x, y, z)`` record; must exceed ``tau``.

    Returns
    -------
    (table, s_hat):
        The derived table and the coverage fraction ``m / (m + 1)``.
    """
    if big_w <= tau:
        raise ValidationError(
            f"W must exceed tau, got W={big_w} <= tau={tau}"
        )
    rows: list[tuple] = []
    measure: list[float] = []
    for u, v in sorted(graph.edges):
        parts = {u[0]: u, v[0]: v}
        if set(parts) == {"a", "b"}:
            rows.append((parts["a"], parts["b"], "z"))
        elif set(parts) == {"a", "c"}:
            rows.append((parts["a"], "y", parts["c"]))
        elif set(parts) == {"b", "c"}:
            rows.append(("x", parts["b"], parts["c"]))
        else:  # pragma: no cover - tripartite_graph already validates
            raise ValidationError(f"edge {u}-{v} is not cross-part")
        measure.append(tau)
    rows.append(("x", "y", "z"))
    measure.append(big_w)
    table = PatternTable(
        attributes=("D1", "D2", "D3"),
        rows=rows,
        measure=measure,
        measure_name="M",
    )
    m = graph.number_of_edges()
    return table, m / (m + 1)


def vertex_patterns(graph: nx.Graph) -> list[Pattern]:
    """The single-vertex patterns the Lemma 1 proof normalizes to.

    ``(a_i, ALL, ALL)`` for part-a vertices, ``(ALL, b_j, ALL)`` for
    part-b, ``(ALL, ALL, c_k)`` for part-c.
    """
    position = {"a": 0, "b": 1, "c": 2}
    patterns = []
    for node in sorted(graph.nodes):
        values: list = [ALL, ALL, ALL]
        values[position[node[0]]] = node
        patterns.append(Pattern(values))
    return patterns


def theorem1_system(system: SetSystem, tau: float) -> SetSystem:
    """Apply the Theorem 1 cost gadget: ``cost > tau`` becomes infinite,
    every other cost becomes 1, so total cost counts the chosen sets."""
    sets = [
        WeightedSet(
            set_id=ws.set_id,
            benefit=ws.benefit,
            cost=math.inf if ws.cost > tau else 1.0,
            label=ws.label,
        )
        for ws in system.sets
    ]
    return SetSystem(system.n_elements, sets)


def theorem3_reduction(
    system: SetSystem,
) -> tuple[PatternTable, dict[int, Pattern]]:
    """Encode an arbitrary set system as a patterned one (Theorem 3).

    The derived table has one 0/1 attribute per element; record ``i`` is
    all zeros except a one in attribute ``i``. The pattern for input set
    ``S`` has ``ALL`` exactly at the attributes of ``S``'s elements and the
    constant 0 elsewhere, so it matches precisely the records of ``S``.

    Returns
    -------
    (table, mapping):
        The 0/1 table and ``set_id -> Pattern``. Patterns other than the
        mapped ones conceptually carry infinite weight; tests verify
        benefit preservation via :class:`~repro.patterns.PatternIndex`.
    """
    n = system.n_elements
    if n < 1:
        raise ValidationError("theorem3_reduction needs >= 1 element")
    rows = [
        tuple(1 if j == i else 0 for j in range(n)) for i in range(n)
    ]
    table = PatternTable(
        attributes=tuple(f"D{i + 1}" for i in range(n)),
        rows=rows,
    )
    mapping: dict[int, Pattern] = {}
    for ws in system.sets:
        values = [ALL if i in ws.benefit else 0 for i in range(n)]
        mapping[ws.set_id] = Pattern(values)
    return table, mapping
