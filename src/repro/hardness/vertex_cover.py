"""Vertex cover solvers used to validate the Lemma 1 reduction.

The reduction maps minimum vertex cover in a tripartite graph to the
minimum number of cost-bounded patterns covering a fraction of a derived
table. To test it end-to-end we need the graph-side optimum:

* :func:`min_vertex_cover_exact` — branch and bound (branch on an
  uncovered edge: one endpoint must be in any cover), exact for small
  graphs;
* :func:`greedy_matching_vertex_cover` — the classic 2-approximation via
  maximal matching, as a sanity upper bound.
"""

from __future__ import annotations

import networkx as nx


def min_vertex_cover_exact(graph: nx.Graph) -> set:
    """Exact minimum vertex cover by edge-branching branch and bound.

    Exponential in the cover size; intended for reduction tests on graphs
    with a few dozen edges.
    """
    best: list[set] = [set(graph.nodes)]

    def search(remaining: nx.Graph, chosen: set) -> None:
        if len(chosen) >= len(best[0]):
            return
        # Find any remaining edge; if none, chosen is a cover.
        edge = next(iter(remaining.edges), None)
        if edge is None:
            best[0] = set(chosen)
            return
        u, v = edge
        for endpoint in (u, v):
            smaller = remaining.copy()
            smaller.remove_node(endpoint)
            search(smaller, chosen | {endpoint})

    search(graph.copy(), set())
    return best[0]


def greedy_matching_vertex_cover(graph: nx.Graph) -> set:
    """2-approximate vertex cover: both endpoints of a maximal matching."""
    cover: set = set()
    for u, v in graph.edges:
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def is_vertex_cover(graph: nx.Graph, cover: set) -> bool:
    """Whether every edge has at least one endpoint in ``cover``."""
    return all(u in cover or v in cover for u, v in graph.edges)
