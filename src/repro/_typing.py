"""Shared type aliases used across the repro package."""

from __future__ import annotations

from typing import Hashable, Union

#: Identifier of a covered element. Core algorithms use dense integers
#: (``0 .. n-1``); dataset loaders map external ids onto this range.
ElementId = int

#: Identifier of a candidate set inside a :class:`~repro.core.SetSystem`.
SetId = int

#: A set weight. Non-negative; ``math.inf`` marks "never choose this set"
#: (used by the Theorem 3 reduction).
Cost = float

#: A categorical attribute value in a pattern table.
AttrValue = Hashable

#: Either a concrete attribute value or the ALL wildcard.
PatternValue = Union[AttrValue, "repro.patterns.pattern._AllType"]  # noqa: F821
