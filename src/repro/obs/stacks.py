"""Stdlib stack sampler: ``sys._current_frames`` snapshots for the daemon.

Answers "what is every thread doing *right now*" without a debugger and
without py-spy: one call to :func:`sample_once` walks the interpreter's
frame table and renders each thread's stack as ``file:line:function``
frames, outermost first. Three usage modes, all on the same primitive:

* **on demand** — ``GET /debug/stacks`` calls :func:`sample_once`;
* **burst** — the postmortem builder takes a short burst (a handful of
  samples a few ms apart) so a bundle shows what the daemon was doing
  around the trigger, not just one instant;
* **continuous** — :class:`StackSampler` runs a daemon thread at a
  configurable Hz into a bounded ring. Idle by default (``hz=0``): the
  overhead budget assumes no sampling unless an operator arms it with
  ``--sampler-hz``.

Samples also aggregate into collapsed-stack lines
(``frame;frame;frame count``), the same format
:mod:`repro.obs.profile` emits for flamegraphs, so a bundle's stacks
drop straight into any flamegraph viewer.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any

from repro.obs.flightrec import RingBuffer

__all__ = [
    "StackSampler",
    "sample_once",
    "burst",
    "collapse_samples",
]


def _thread_names() -> dict[int, str]:
    return {thread.ident: thread.name for thread in threading.enumerate()
            if thread.ident is not None}


def sample_once() -> dict[str, Any]:
    """One snapshot of every thread's Python stack.

    Returns ``{"ts": ..., "threads": [{"thread_id", "name", "daemon",
    "frames": ["file:line:function", ... outermost first]}, ...]}``.
    """
    names = _thread_names()
    daemons = {thread.ident: thread.daemon for thread in threading.enumerate()}
    current = threading.get_ident()
    threads = []
    for thread_id, frame in sorted(sys._current_frames().items()):
        frames: list[str] = []
        while frame is not None:
            code = frame.f_code
            frames.append(
                f"{code.co_filename}:{frame.f_lineno}:{code.co_name}"
            )
            frame = frame.f_back
        frames.reverse()
        threads.append(
            {
                "thread_id": thread_id,
                "name": names.get(thread_id, f"thread-{thread_id}"),
                "daemon": bool(daemons.get(thread_id, False)),
                "is_sampler": thread_id == current,
                "frames": frames,
            }
        )
    return {"ts": round(time.time(), 3), "threads": threads}


def burst(count: int = 5, interval: float = 0.02) -> list[dict[str, Any]]:
    """Take ``count`` samples ``interval`` seconds apart (blocking —
    callers run this off the hot path, e.g. the bundle-builder thread)."""
    samples = []
    for index in range(max(1, count)):
        if index:
            time.sleep(interval)
        samples.append(sample_once())
    return samples


def collapse_samples(samples: list[dict[str, Any]]) -> list[str]:
    """Aggregate samples into collapsed-stack lines (``f;g;h count``),
    most frequent first. The sampler's own thread is excluded."""
    counts: Counter[str] = Counter()
    for sample in samples:
        for thread in sample.get("threads", ()):
            if thread.get("is_sampler"):
                continue
            frames = [
                frame.rsplit("/", 1)[-1] for frame in thread.get("frames", ())
            ]
            if frames:
                counts[";".join(frames)] += 1
    return [
        f"{stack} {count}"
        for stack, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]


class StackSampler:
    """Optional continuous sampler: ``hz`` samples/second into a ring.

    ``hz=0`` (the default) means fully idle — no thread is started and
    :meth:`start` is a no-op, which is the state the serve overhead
    budget is measured in. Trigger code can still call :func:`burst`
    directly; the ring here only fills when an operator arms the
    sampler.
    """

    def __init__(self, hz: float = 0.0, capacity: int = 120) -> None:
        if hz < 0:
            raise ValueError(f"sampler hz must be >= 0, got {hz}")
        self.hz = hz
        self.ring = RingBuffer(capacity)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> None:
        if self.hz <= 0 or self._thread is not None:
            return
        self._stop.clear()
        interval = 1.0 / self.hz

        def _loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.ring.append(sample_once())
                except Exception:  # noqa: BLE001 - keep sampling
                    pass

        self._thread = threading.Thread(
            target=_loop, name="scwsc-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def recent(self) -> list[dict[str, Any]]:
        return self.ring.snapshot()
