"""Trace rollups and the renderer behind ``scwsc trace summarize``.

A trace file is a flat JSONL stream; this module turns it into the
questions an operator actually asks: *where did the time go per phase*,
*how many of each event happened*, and *how did budget rounds trend*.
The rollup is by span name — the instrumented phase names (``solve``,
``preprocess``, ``budget_round``, ``select``, ``lp_relaxation``, ...)
are stable and documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from typing import Any

from repro.experiments.ascii_chart import render_chart


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a JSONL trace, skipping blank lines. Raises on invalid JSON
    (run ``scwsc trace validate`` for a line-by-line diagnosis)."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def phase_rollups(records: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """Per-span-name ``{count, total, self, mean, max}`` duration rollups.

    ``total`` is inclusive wall time; ``self`` subtracts the durations of
    each span's *direct* children, so a parent phase like ``solve`` stops
    double-counting the ``select`` calls nested inside it. ``self`` is
    clamped at zero per span — clock jitter can make children sum to a
    hair more than their parent.
    """
    child_durations: dict[Any, float] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        parent = record.get("parent_id")
        if parent is not None:
            child_durations[parent] = child_durations.get(parent, 0.0) + float(
                record.get("duration", 0.0)
            )
    rollups: dict[str, dict[str, float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record["name"]
        duration = float(record.get("duration", 0.0))
        self_time = max(
            0.0, duration - child_durations.get(record.get("span_id"), 0.0)
        )
        entry = rollups.get(name)
        if entry is None:
            rollups[name] = {
                "count": 1,
                "total": duration,
                "self": self_time,
                "max": duration,
            }
        else:
            entry["count"] += 1
            entry["total"] += duration
            entry["self"] += self_time
            if duration > entry["max"]:
                entry["max"] = duration
    for entry in rollups.values():
        entry["mean"] = entry["total"] / entry["count"]
    return rollups


def event_counts(records: list[dict[str, Any]]) -> dict[str, int]:
    """How many of each event name the trace contains."""
    tally: TallyCounter[str] = TallyCounter()
    for record in records:
        if record.get("type") == "event":
            tally[record["name"]] += 1
    return dict(tally)


def _budget_round_chart(records: list[dict[str, Any]]) -> str | None:
    """Duration per budget_round span, charted when there are >= 2."""
    rounds = [
        (record.get("attrs", {}).get("round", i), float(record["duration"]))
        for i, record in enumerate(records)
        if record.get("type") == "span" and record["name"] == "budget_round"
    ]
    if len(rounds) < 2:
        return None
    xs = [float(index) for index, _ in rounds]
    ys = [duration for _, duration in rounds]
    return render_chart(
        xs,
        {"duration_s": ys},
        width=48,
        height=10,
        y_label="seconds per budget round",
        x_label="budget round",
    )


def render_summary(records: list[dict[str, Any]]) -> str:
    """Human-readable per-phase rollup: table + optional round chart +
    event tallies + final metrics snapshot highlights."""
    lines: list[str] = []

    meta = next((r for r in records if r.get("type") == "meta"), None)
    if meta is not None:
        attrs = meta.get("attrs") or {}
        described = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"trace: schema={meta.get('schema')} {described}".rstrip())
        lines.append("")

    rollups = phase_rollups(records)
    if rollups:
        lines.append("phase rollup (by span name):")
        header = (
            f"  {'phase':<16} {'count':>7} {'total_s':>10} {'self_s':>10} "
            f"{'mean_s':>10} {'max_s':>10}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for name, entry in sorted(
            rollups.items(), key=lambda item: -item[1]["total"]
        ):
            lines.append(
                f"  {name:<16} {int(entry['count']):>7} "
                f"{entry['total']:>10.4f} {entry.get('self', 0.0):>10.4f} "
                f"{entry['mean']:>10.6f} {entry['max']:>10.6f}"
            )
    else:
        lines.append("no spans in trace")

    chart = _budget_round_chart(records)
    if chart is not None:
        lines.append("")
        lines.append(chart)

    events = event_counts(records)
    if events:
        lines.append("")
        lines.append("events:")
        for name, count in sorted(events.items(), key=lambda item: -item[1]):
            lines.append(f"  {name:<24} {count:>7}")

    metrics_record = next(
        (r for r in reversed(records) if r.get("type") == "metrics"), None
    )
    if metrics_record is not None:
        lines.append("")
        lines.append("metrics snapshot (counters):")
        for name, metric in sorted(metrics_record.get("metrics", {}).items()):
            if metric.get("kind") != "counter":
                continue
            for sample in metric.get("values", []):
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(sample.get("labels", {}).items())
                )
                label_part = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"  {name}{label_part} {sample.get('value', 0):g}"
                )
    return "\n".join(lines)


def summary_data(records: list[dict[str, Any]]) -> dict[str, Any]:
    """The summarize rollup as plain data (``scwsc trace summarize
    --json``): same numbers as :func:`render_summary`, machine-readable.
    """
    meta = next((r for r in records if r.get("type") == "meta"), None)
    metrics_record = next(
        (r for r in reversed(records) if r.get("type") == "metrics"), None
    )
    counters: list[dict[str, Any]] = []
    if metrics_record is not None:
        for name, metric in sorted(metrics_record.get("metrics", {}).items()):
            if metric.get("kind") != "counter":
                continue
            for sample in metric.get("values", []):
                counters.append(
                    {
                        "name": name,
                        "labels": sample.get("labels", {}),
                        "value": sample.get("value", 0),
                    }
                )
    return {
        "schema": meta.get("schema") if meta else None,
        "meta": (meta.get("attrs") or {}) if meta else {},
        "records": len(records),
        "phases": phase_rollups(records),
        "events": event_counts(records),
        "counters": counters,
    }


def summarize_file(path: str, as_json: bool = False) -> str:
    records = load_trace(path)
    if as_json:
        return json.dumps(summary_data(records), indent=2, sort_keys=True)
    return render_summary(records)
