"""Package logger plumbing.

Library code never configures handlers — ``repro/__init__`` attaches a
``NullHandler`` to the ``"repro"`` logger so importing the library stays
silent, per stdlib convention. Entry points (the CLI, pool worker main)
opt into console output with :func:`console_logging`, which honors the
``REPRO_LOG_LEVEL`` environment variable (default WARNING, so existing
operator-facing diagnostics like the REPRO_DEBUG_HANG watchdog — emitted
at WARNING — keep appearing on stderr).
"""

from __future__ import annotations

import logging
import os
import sys

ROOT_LOGGER = "repro"

_CONSOLE_HANDLER: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """Child logger under the ``repro`` hierarchy.

    Pass ``__name__`` — module names already start with ``repro.``, so
    the handler attached to the package root covers them all.
    """
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def console_logging(level: int | str | None = None) -> logging.Handler:
    """Attach (once) a stderr handler to the ``repro`` logger.

    Called by process entry points only. ``level`` defaults to
    ``REPRO_LOG_LEVEL`` or WARNING. Repeat calls re-level the existing
    handler instead of stacking duplicates.
    """
    global _CONSOLE_HANDLER
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    logger = logging.getLogger(ROOT_LOGGER)
    if _CONSOLE_HANDLER is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
        _CONSOLE_HANDLER = handler
    _CONSOLE_HANDLER.setLevel(level)
    logger.setLevel(level)
    return _CONSOLE_HANDLER
