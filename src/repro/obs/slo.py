"""Per-tenant and global SLO tracking with multi-window burn rates.

An SLO here is two objectives over served solve traffic:

* **latency** — at least ``latency_objective`` of requests complete
  within ``latency_threshold`` seconds;
* **availability** — at least ``error_objective`` of requests avoid
  server-side failure (HTTP 5xx; sheds and client errors are policy,
  not burned budget).

The tracker keeps a small ring of fixed-width time slots (no per-request
storage) per scope — one global scope plus one per tenant seen — and
derives, for each configured window, the classic *burn rate*::

    burn = observed_bad_fraction / (1 - objective)

Burn 1.0 means the error budget is being spent exactly as fast as the
objective allows; 14.4 over 5 minutes is the textbook page threshold.
Everything is published into the existing metrics registry
(:mod:`repro.obs.metrics`) under ``scwsc_slo_*`` so the ``/metrics``
endpoint, the live console (``scwsc top``), and any Prometheus scraper
see the same numbers:

* ``scwsc_slo_requests_total{scope,objective,verdict}`` — good/bad
  counts per objective;
* ``scwsc_slo_request_seconds{scope}`` — latency histogram on the
  registry's standard buckets;
* ``scwsc_slo_burn_rate{scope,objective,window}`` — multi-window burn
  gauges;
* ``scwsc_slo_objective_ratio{scope,objective}`` — the configured
  target, so dashboards need no out-of-band config.

The clock is injectable so tests can step time deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["SloObjectives", "SloTracker", "GLOBAL_SCOPE"]

#: Label value naming the all-tenants aggregate scope.
GLOBAL_SCOPE = "_global"

#: Time-slot width in seconds. Small enough that a 5-minute window has
#: 30 slots of resolution, large enough that a week of uptime is only
#: bookkeeping for the slots inside the largest window.
SLOT_SECONDS = 10.0


class SloObjectives:
    """One scope's targets: latency threshold/fraction + error fraction."""

    __slots__ = ("latency_threshold", "latency_objective", "error_objective")

    def __init__(
        self,
        latency_threshold: float,
        latency_objective: float,
        error_objective: float,
    ) -> None:
        if latency_threshold <= 0:
            raise ValidationError(
                f"latency_threshold must be > 0, got {latency_threshold}"
            )
        for name, value in (
            ("latency_objective", latency_objective),
            ("error_objective", error_objective),
        ):
            if not 0.0 < value < 1.0:
                raise ValidationError(
                    f"{name} must be in (0, 1), got {value}"
                )
        self.latency_threshold = float(latency_threshold)
        self.latency_objective = float(latency_objective)
        self.error_objective = float(error_objective)

    def override(self, spec: Mapping[str, Any]) -> "SloObjectives":
        """A copy with fields replaced from a per-tenant override dict."""
        known = {
            "latency_threshold",
            "latency_objective",
            "error_objective",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValidationError(
                f"unknown SLO override keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return SloObjectives(
            latency_threshold=float(
                spec.get("latency_threshold", self.latency_threshold)
            ),
            latency_objective=float(
                spec.get("latency_objective", self.latency_objective)
            ),
            error_objective=float(
                spec.get("error_objective", self.error_objective)
            ),
        )


class _Slot:
    """One time slot's good/bad tallies for both objectives."""

    __slots__ = ("start", "total", "slow", "errors")

    def __init__(self, start: float) -> None:
        self.start = start
        self.total = 0
        self.slow = 0
        self.errors = 0


class _Scope:
    """Ring of recent slots for one scope (global or a tenant)."""

    __slots__ = ("objectives", "slots")

    def __init__(self, objectives: SloObjectives) -> None:
        self.objectives = objectives
        self.slots: list[_Slot] = []


class SloTracker:
    """Aggregates request outcomes into SLO metrics and burn gauges.

    ``observe`` is called once per served request from the HTTP layer;
    ``publish`` refreshes the burn-rate gauges (cheap — sums over a few
    hundred slots at most) and is called before each ``/metrics``
    scrape. Thread-safe: handler threads observe concurrently.
    """

    def __init__(
        self,
        objectives: SloObjectives,
        *,
        tenant_overrides: Mapping[str, Mapping[str, Any]] | None = None,
        windows: tuple[float, ...] = (300.0, 3600.0),
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows or any(w <= 0 for w in windows):
            raise ValidationError(
                f"SLO windows must be positive, got {windows}"
            )
        self.default_objectives = objectives
        self.windows = tuple(sorted(float(w) for w in windows))
        self._overrides = {
            tenant: objectives.override(spec)
            for tenant, spec in (tenant_overrides or {}).items()
        }
        self._registry = registry or get_registry()
        self._clock = clock
        self._lock = threading.Lock()
        self._scopes: dict[str, _Scope] = {}
        self._requests = self._registry.counter(
            "scwsc_slo_requests_total",
            "Requests judged against each SLO objective, by verdict",
        )
        self._latency = self._registry.histogram(
            "scwsc_slo_request_seconds",
            "Served request latency per SLO scope",
        )
        self._burn = self._registry.gauge(
            "scwsc_slo_burn_rate",
            "Error-budget burn rate per scope, objective, and window",
        )
        self._ratio = self._registry.gauge(
            "scwsc_slo_objective_ratio",
            "Configured SLO target fraction per scope and objective",
        )

    def objectives_for(self, tenant: str) -> SloObjectives:
        return self._overrides.get(tenant, self.default_objectives)

    # ------------------------------------------------------------------
    def _scope(self, name: str) -> _Scope:
        scope = self._scopes.get(name)
        if scope is None:
            objectives = (
                self.default_objectives
                if name == GLOBAL_SCOPE
                else self.objectives_for(name)
            )
            scope = _Scope(objectives)
            self._scopes[name] = scope
            self._ratio.set(
                objectives.latency_objective,
                scope=name,
                objective="latency",
            )
            self._ratio.set(
                objectives.error_objective, scope=name, objective="error"
            )
        return scope

    def _tally(self, scope: _Scope, now: float, seconds: float,
               is_error: bool) -> tuple[bool, bool]:
        slot_start = now - (now % SLOT_SECONDS)
        if not scope.slots or scope.slots[-1].start != slot_start:
            scope.slots.append(_Slot(slot_start))
            horizon = now - self.windows[-1] - SLOT_SECONDS
            while scope.slots and scope.slots[0].start < horizon:
                scope.slots.pop(0)
        slot = scope.slots[-1]
        slow = seconds > scope.objectives.latency_threshold
        slot.total += 1
        if slow:
            slot.slow += 1
        if is_error:
            slot.errors += 1
        return slow, is_error

    def observe(self, tenant: str, seconds: float, code: int) -> None:
        """Record one served request's latency and outcome."""
        is_error = code >= 500
        now = self._clock()
        with self._lock:
            for name in (GLOBAL_SCOPE, tenant):
                scope = self._scope(name)
                slow, _ = self._tally(scope, now, seconds, is_error)
                self._requests.inc(
                    scope=name,
                    objective="latency",
                    verdict="bad" if slow else "good",
                )
                self._requests.inc(
                    scope=name,
                    objective="error",
                    verdict="bad" if is_error else "good",
                )
                self._latency.observe(seconds, scope=name)

    # ------------------------------------------------------------------
    def _window_fractions(
        self, scope: _Scope, now: float, window: float
    ) -> tuple[float, float]:
        """(slow_fraction, error_fraction) over the trailing window."""
        horizon = now - window
        total = slow = errors = 0
        for slot in reversed(scope.slots):
            if slot.start + SLOT_SECONDS <= horizon:
                break
            total += slot.total
            slow += slot.slow
            errors += slot.errors
        if total == 0:
            return 0.0, 0.0
        return slow / total, errors / total

    @staticmethod
    def _label_for(window: float) -> str:
        if window % 3600 == 0:
            return f"{int(window // 3600)}h"
        if window % 60 == 0:
            return f"{int(window // 60)}m"
        return f"{window:g}s"

    def publish(self) -> None:
        """Refresh every burn-rate gauge from the current rings."""
        now = self._clock()
        with self._lock:
            scopes = list(self._scopes.items())
            for name, scope in scopes:
                latency_budget = 1.0 - scope.objectives.latency_objective
                error_budget = 1.0 - scope.objectives.error_objective
                for window in self.windows:
                    slow_frac, error_frac = self._window_fractions(
                        scope, now, window
                    )
                    label = self._label_for(window)
                    self._burn.set(
                        round(slow_frac / latency_budget, 6),
                        scope=name,
                        objective="latency",
                        window=label,
                    )
                    self._burn.set(
                        round(error_frac / error_budget, 6),
                        scope=name,
                        objective="error",
                        window=label,
                    )

    def snapshot(self) -> dict[str, Any]:
        """Window fractions and burn rates as plain data (tests, debug)."""
        now = self._clock()
        out: dict[str, Any] = {}
        with self._lock:
            for name, scope in self._scopes.items():
                windows = {}
                for window in self.windows:
                    slow_frac, error_frac = self._window_fractions(
                        scope, now, window
                    )
                    windows[self._label_for(window)] = {
                        "slow_fraction": slow_frac,
                        "error_fraction": error_frac,
                        "latency_burn": slow_frac
                        / (1.0 - scope.objectives.latency_objective),
                        "error_burn": error_frac
                        / (1.0 - scope.objectives.error_objective),
                    }
                out[name] = windows
        return out
