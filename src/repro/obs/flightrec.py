"""Flight recorder: always-on bounded ring buffers for the serve daemon.

The trace file answers "what happened" *if you asked in advance*; the
``/metrics`` page answers "what is happening now". Neither helps when a
worker dies at 3am and the evidence is already gone. The flight recorder
is the black box in between: four lock-cheap ring buffers that
continuously retain the most recent

* **spans** — completed server/pool spans (``scwsc-trace/1`` records),
* **events** — pool lifecycle, breaker transitions, chaos injections,
* **access** — per-request access-log records (``scwsc-access/1``),
* **metrics** — periodic registry snapshots from a background poller,

plus the last ring shipped home by each pool worker (see
``repro.resilience.pool.worker``). Everything is bounded: a ring never
grows, never blocks, and overwrites its oldest entry when full, counting
what it dropped.

Wiring: :func:`install` registers a :class:`FlightRecorder` as the
module singleton *and* as the trace module's ring channel
(:func:`repro.obs.trace.set_ring`), so

* with ``--trace``, every record the full tracer writes is teed in;
* without it, coarse call sites (``trace.span``/``trace.event``) fall
  back to the ring channel on their own.

Crucially :func:`repro.obs.trace.enabled` stays False when only the ring
is armed, so the per-selection tracker hot loops are byte-identical with
the recorder on or off — that is the whole <2% overhead budget story
(enforced by ``tests/obs/test_flightrec_overhead.py``).

The recorder is a passive store; the trigger engine that turns its
contents into on-disk postmortem bundles lives in
:mod:`repro.obs.postmortem`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = [
    "RingBuffer",
    "FlightRecorder",
    "install",
    "uninstall",
    "get_recorder",
]


class RingBuffer:
    """A bounded, thread-safe record ring: O(1) append, oldest-evicted.

    The lock is held only for the deque append and two integer bumps —
    cheap enough for the request path. ``snapshot()`` copies under the
    lock so readers never see a torn ring.
    """

    __slots__ = ("capacity", "_records", "_lock", "_total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: deque[Any] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0

    def append(self, record: Any) -> None:
        with self._lock:
            self._records.append(record)
            self._total += 1

    def snapshot(self) -> list[Any]:
        with self._lock:
            return list(self._records)

    def stats(self) -> dict[str, int]:
        with self._lock:
            kept = len(self._records)
            return {
                "capacity": self.capacity,
                "total": self._total,
                "dropped": self._total - kept,
                "kept": kept,
            }

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class FlightRecorder:
    """The in-process black box: typed rings plus a metrics poller.

    Doubles as a trace *sink* (it has ``write(record)``) so it can be
    installed as the ring channel of :mod:`repro.obs.trace`; records are
    routed by their ``type`` field. An optional ``on_event`` callback
    (the postmortem trigger engine) observes every event record; it runs
    on the emitting thread and is exception-isolated so a broken trigger
    can never take down a solve.
    """

    def __init__(
        self,
        *,
        span_capacity: int = 1024,
        event_capacity: int = 1024,
        access_capacity: int = 256,
        metrics_capacity: int = 16,
    ) -> None:
        self.spans = RingBuffer(span_capacity)
        self.events = RingBuffer(event_capacity)
        self.access = RingBuffer(access_capacity)
        self.metrics = RingBuffer(metrics_capacity)
        self.started_unix = time.time()
        #: worker index -> last ring the worker shipped in a result frame
        self._worker_rings: dict[int, list[dict[str, Any]]] = {}
        self._worker_lock = threading.Lock()
        self.on_event: Callable[[dict[str, Any]], None] | None = None
        self._poll_thread: threading.Thread | None = None
        self._poll_stop = threading.Event()
        self.on_poll: Callable[[], None] | None = None

    # -- trace sink interface ------------------------------------------

    def write(self, record: dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "span":
            self.spans.append(record)
            return
        if kind == "metrics":
            self.metrics.append(record)
            return
        # events, plus anything unrecognized (meta, profile, quality):
        # better in the wrong ring than silently gone.
        self.events.append(record)
        if kind == "event":
            callback = self.on_event
            if callback is not None:
                try:
                    callback(record)
                except Exception:  # noqa: BLE001 - triggers must not break solves
                    pass

    def close(self) -> None:  # pragma: no cover - sink-interface symmetry
        pass

    # -- non-trace feeds -----------------------------------------------

    def record_access(self, record: dict[str, Any]) -> None:
        """Ring one access-log record (``scwsc-access/1`` shape)."""
        self.access.append(record)

    def record_metrics(self, snapshot: dict[str, Any]) -> None:
        """Ring one metrics snapshot (stamped with wall time)."""
        self.metrics.append(
            {"type": "metrics", "ts": round(time.time(), 3), "metrics": snapshot}
        )

    def note_worker_ring(self, index: int, records: list[dict[str, Any]]) -> None:
        """Retain the ring a pool worker shipped in its latest result
        frame — the worker's last words if it is killed before the next."""
        with self._worker_lock:
            self._worker_rings[index] = records

    def worker_rings(self) -> dict[int, list[dict[str, Any]]]:
        with self._worker_lock:
            return {index: list(ring) for index, ring in self._worker_rings.items()}

    # -- periodic metrics poll -----------------------------------------

    def start_metrics_poll(
        self,
        snapshot_fn: Callable[[], dict[str, Any]],
        interval: float = 10.0,
    ) -> None:
        """Start a daemon thread ringing ``snapshot_fn()`` every
        ``interval`` seconds; also fires ``on_poll`` (the trigger
        engine's SLO fast-burn check) each tick."""
        if self._poll_thread is not None:
            return
        self._poll_stop.clear()
        # Ring one snapshot right away so a bundle built before the
        # first tick still carries a metrics baseline.
        try:
            self.record_metrics(snapshot_fn())
        except Exception:  # noqa: BLE001
            pass

        def _loop() -> None:
            while not self._poll_stop.wait(interval):
                try:
                    self.record_metrics(snapshot_fn())
                except Exception:  # noqa: BLE001 - keep polling
                    pass
                callback = self.on_poll
                if callback is not None:
                    try:
                        callback()
                    except Exception:  # noqa: BLE001
                        pass

        self._poll_thread = threading.Thread(
            target=_loop, name="scwsc-flightrec-poll", daemon=True
        )
        self._poll_thread.start()

    def stop_metrics_poll(self) -> None:
        thread = self._poll_thread
        if thread is None:
            return
        self._poll_stop.set()
        thread.join(timeout=5.0)
        self._poll_thread = None

    # -- introspection --------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Ring occupancy counters — the ``/debug/flightrec`` body."""
        with self._worker_lock:
            workers = {
                str(index): len(ring)
                for index, ring in sorted(self._worker_rings.items())
            }
        return {
            "started_unix": round(self.started_unix, 3),
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "rings": {
                "spans": self.spans.stats(),
                "events": self.events.stats(),
                "access": self.access.stats(),
                "metrics": self.metrics.stats(),
            },
            "worker_ring_records": workers,
        }

    def snapshot(self) -> dict[str, Any]:
        """Full ring contents — the bulk of a postmortem bundle."""

        def _ring(ring: RingBuffer) -> dict[str, Any]:
            stats = ring.stats()
            return {
                "capacity": stats["capacity"],
                "total": stats["total"],
                "dropped": stats["dropped"],
                "records": ring.snapshot(),
            }

        return {
            "spans": _ring(self.spans),
            "events": _ring(self.events),
            "access": _ring(self.access),
            "metrics": _ring(self.metrics),
        }


# ---------------------------------------------------------------------------
# Module singleton: one recorder per process, wired into the trace ring.
# ---------------------------------------------------------------------------

_RECORDER: FlightRecorder | None = None


def install(recorder: FlightRecorder | None = None, **capacities: int) -> FlightRecorder:
    """Install ``recorder`` (or a fresh one) as the process-wide flight
    recorder and arm it as the trace module's ring channel."""
    from repro.obs import trace as obs_trace

    global _RECORDER
    if recorder is None:
        recorder = FlightRecorder(**capacities)
    _RECORDER = recorder
    obs_trace.set_ring(recorder)
    return recorder


def uninstall() -> None:
    """Disarm the ring channel and drop the singleton (stopping its
    metrics poller if running)."""
    from repro.obs import trace as obs_trace

    global _RECORDER
    if _RECORDER is not None:
        _RECORDER.stop_metrics_poll()
    _RECORDER = None
    obs_trace.clear_ring()


def get_recorder() -> FlightRecorder | None:
    return _RECORDER
