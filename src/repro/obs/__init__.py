"""repro.obs — zero-dependency observability: tracing, metrics, reports.

The paper's evaluation is all about *where work goes* — sets considered,
marginal updates, budget rounds (Tables 4-6, Figs. 5-9) — and the
resilience pool adds a second axis: *what happened to each request*.
This package makes both first-class instead of debug logging:

* :mod:`repro.obs.trace` — nested monotonic-clock spans with attributes
  and a JSONL sink, threaded through every solver, both marginal-tracker
  backends, and the process pool. Disabled by default and near-free when
  off: ``span()`` returns a shared no-op and hot paths guard attribute
  dicts behind a single ``enabled()`` check. Also home to the W3C-style
  request :class:`~repro.obs.trace.TraceContext` (``traceparent``
  mint/parse/propagate) that stitches server, worker, and shard spans
  into one request tree.
* :mod:`repro.obs.slo` — per-tenant/global latency+error SLOs with
  multi-window burn-rate gauges (``scwsc_slo_*``), fed by the serve
  layer.
* :mod:`repro.obs.console` — the stdlib ``scwsc top`` terminal console
  over a daemon's ``/metrics`` page.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with a
  Prometheus-style text exposition and a JSON snapshot; the solver
  :class:`~repro.core.result.Metrics` counters publish into it through
  one shared field schema.
* :mod:`repro.obs.schema` — the trace record schema and a validator
  (``python -m repro.obs.schema trace.jsonl``), used by CI's trace-smoke
  step and ``scwsc trace validate``.
* :mod:`repro.obs.report` — per-phase time/count/self-time rollups and
  the renderer behind ``scwsc trace summarize``.
* :mod:`repro.obs.profile` — span-integrated cProfile + tracemalloc +
  peak-RSS profiling behind the CLI's ``--profile`` flag, plus the
  collapsed-stack (flamegraph) exporter.
* :mod:`repro.obs.quality` — solution-quality telemetry (approximation
  ratio vs. the LP lower bound, coverage slack, sets-vs-budget),
  published on every recorded solve and gated by ``scwsc bench --check``.
* :mod:`repro.obs.dashboard` — the single-file static HTML run report
  behind ``scwsc report TRACE -o report.html``.
* :mod:`repro.obs.log` — the package logger (``logging.getLogger
  ("repro")`` with a ``NullHandler``) and console-handler setup for the
  CLI and pool workers.
* :mod:`repro.obs.flightrec` — the always-on flight recorder: bounded
  ring buffers for spans/events/access/metrics that tee off the tracer
  without flipping ``enabled()``, so the hot-path guards stay cold.
* :mod:`repro.obs.stacks` — ``sys._current_frames`` stack sampling (one
  shot, bursts, or a background :class:`~repro.obs.stacks.StackSampler`)
  with a collapsed-stack rollup.
* :mod:`repro.obs.postmortem` — ``scwsc-postmortem/1`` bundles: build /
  validate / redact, the bounded on-disk :class:`~repro.obs.postmortem.
  BundleSpool`, and the rate-limited :class:`~repro.obs.postmortem.
  TriggerEngine` the serve daemon arms.

See docs/OBSERVABILITY.md for the record schema and overhead numbers.
"""

from repro.obs.dashboard import load_history, render_dashboard
from repro.obs.flightrec import (
    FlightRecorder,
    RingBuffer,
    get_recorder,
    install,
    uninstall,
)
from repro.obs.log import console_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    record_cover_result,
)
from repro.obs.postmortem import (
    POSTMORTEM_SCHEMA,
    BundleSpool,
    TriggerEngine,
    build_bundle,
    redact_bundle,
    validate_bundle,
    validate_bundle_file,
)
from repro.obs.quality import compute_quality, quality_records, record_quality
from repro.obs.slo import GLOBAL_SCOPE, SloObjectives, SloTracker
from repro.obs.stacks import StackSampler, collapse_samples, sample_once
from repro.obs.trace import (
    NULL_SPAN,
    TraceContext,
    Tracer,
    capture,
    configure,
    enabled,
    event,
    get_context,
    get_tracer,
    parse_traceparent,
    recording,
    replay,
    shutdown,
    span,
)

__all__ = [
    "BundleSpool",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "GLOBAL_SCOPE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "POSTMORTEM_SCHEMA",
    "RingBuffer",
    "SloObjectives",
    "SloTracker",
    "StackSampler",
    "TraceContext",
    "Tracer",
    "TriggerEngine",
    "build_bundle",
    "capture",
    "collapse_samples",
    "compute_quality",
    "configure",
    "console_logging",
    "enabled",
    "event",
    "get_context",
    "get_logger",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "install",
    "load_history",
    "parse_traceparent",
    "quality_records",
    "record_cover_result",
    "record_quality",
    "recording",
    "redact_bundle",
    "render_dashboard",
    "replay",
    "sample_once",
    "shutdown",
    "span",
    "uninstall",
    "validate_bundle",
    "validate_bundle_file",
]
