"""Solution-quality telemetry: how good was the answer, not just how fast.

The paper's experiments ask two quality questions of every solve (Tables
4-5): how far above the optimum did the heuristic land, and how much of
the constraint budget did it spend? Per-instance accuracy estimation for
greedy set cover (Prolubnikov, arXiv:1811.04037) shows the first is
cheaply observable per instance via the LP lower bound — any feasible
integral solution costs at least the LP optimum, so
``total_cost / lp_bound`` is a per-instance upper bound on the true
approximation ratio. This module makes those numbers first-class
telemetry:

* :func:`compute_quality` — the pure calculation: approximation ratio
  vs. an LP lower bound, coverage slack vs. the target ``s_hat``, and
  sets used vs. the size budget ``k``;
* :func:`record_quality` — publishes one solve's quality into the
  process-global metrics registry (ratio histogram + last-value gauges)
  and, when a tracer is configured, writes a ``quality`` trace record
  (schema ``scwsc-trace/1``);
* :func:`quality_records` — pulls the ``quality`` records back out of a
  loaded trace for reports and the dashboard.

:func:`repro.obs.metrics.record_cover_result` calls
:func:`record_quality` for every published solve, so quality telemetry
rides the exact same path runtime telemetry already takes; the bench
harness persists the same dict per cell and gates regressions on it
(see :mod:`repro.bench` and docs/PERFORMANCE.md).
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.result import CoverResult
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, get_registry

#: Approximation-ratio histogram buckets. Fixed (like
#: :data:`repro.obs.metrics.DEFAULT_BUCKETS`) so snapshots merge; 1.0 is
#: "matched the LP bound", the tail catches pathological fallbacks.
RATIO_BUCKETS: tuple[float, ...] = (
    1.0,
    1.05,
    1.1,
    1.25,
    1.5,
    2.0,
    3.0,
    5.0,
    10.0,
    25.0,
)


def compute_quality(
    result: CoverResult,
    k: int | None = None,
    s_hat: float | None = None,
    lp_bound: float | None = None,
) -> dict[str, Any]:
    """Quality facts for one finished solve, as a JSON-ready dict.

    ``k`` and ``s_hat`` default to the values the solver recorded in
    ``result.params`` (every core solver stores both). ``lp_bound`` is
    never computed here — solving the LP costs more than the solve being
    measured on small instances, so callers decide when it is worth it
    (the bench harness computes it once per workload cell).

    Keys
    ----
    ``approx_ratio``
        ``total_cost / lp_bound`` — an upper bound on the true
        approximation ratio. ``None`` when no (positive, finite)
        ``lp_bound`` is available.
    ``coverage_slack``
        ``coverage_fraction - s_hat``: non-negative means the target was
        met, with slack. ``None`` when ``s_hat`` is unknown.
    ``sets_used`` / ``sets_budget`` / ``sets_slack``
        Solution size vs. the size constraint ``k`` (CMC variants may
        legitimately exceed ``k``; the slack goes negative and the
        dashboard shows it).
    """
    if k is None:
        k = result.params.get("k")
    if s_hat is None:
        s_hat = result.params.get("s_hat")
    approx_ratio = None
    if (
        lp_bound is not None
        and lp_bound > 0
        and math.isfinite(lp_bound)
        and math.isfinite(result.total_cost)
    ):
        approx_ratio = float(result.total_cost) / float(lp_bound)
    coverage_slack = None
    if s_hat is not None:
        coverage_slack = result.coverage_fraction - float(s_hat)
    sets_slack = None if k is None else int(k) - result.n_sets
    return {
        "total_cost": (
            float(result.total_cost)
            if math.isfinite(result.total_cost)
            else None
        ),
        "lp_bound": (
            float(lp_bound)
            if lp_bound is not None and math.isfinite(lp_bound)
            else None
        ),
        "approx_ratio": approx_ratio,
        "coverage_fraction": result.coverage_fraction,
        "coverage_target": None if s_hat is None else float(s_hat),
        "coverage_slack": coverage_slack,
        "sets_used": result.n_sets,
        "sets_budget": None if k is None else int(k),
        "sets_slack": sets_slack,
        "feasible": bool(result.feasible),
    }


def record_quality(
    result: CoverResult,
    k: int | None = None,
    s_hat: float | None = None,
    lp_bound: float | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Publish one solve's quality telemetry; returns the quality dict.

    Registry side: ``scwsc_approx_ratio`` (histogram over
    :data:`RATIO_BUCKETS`, only when a bound is available) plus
    last-value gauges ``scwsc_coverage_slack`` / ``scwsc_sets_used``
    and the ``scwsc_infeasible_results_total`` counter, all labelled by
    algorithm. Trace side: one ``quality`` record, so a trace file
    carries the answer-quality story alongside the timing story.
    """
    registry = registry or get_registry()
    quality = compute_quality(result, k=k, s_hat=s_hat, lp_bound=lp_bound)
    algorithm = result.algorithm
    if quality["approx_ratio"] is not None:
        registry.histogram(
            "scwsc_approx_ratio",
            "Solution cost over the LP lower bound, per solve",
            buckets=RATIO_BUCKETS,
        ).observe(quality["approx_ratio"], algorithm=algorithm)
    if quality["coverage_slack"] is not None:
        registry.gauge(
            "scwsc_coverage_slack",
            "coverage_fraction - s_hat of the most recent solve",
        ).set(quality["coverage_slack"], algorithm=algorithm)
    registry.gauge(
        "scwsc_sets_used",
        "Solution size of the most recent solve",
    ).set(quality["sets_used"], algorithm=algorithm)
    if not quality["feasible"]:
        registry.counter(
            "scwsc_infeasible_results_total",
            "Solves that returned an infeasible (partial) answer",
        ).inc(algorithm=algorithm)
    tracer = obs_trace.get_tracer()
    if tracer is not None:
        tracer.write_raw(
            {
                "type": "quality",
                "t": round(tracer.now(), 6),
                "algorithm": algorithm,
                "quality": quality,
            }
        )
    return quality


def quality_records(records: list[dict]) -> list[dict]:
    """The ``quality`` records of a loaded trace, in file order."""
    return [r for r in records if r.get("type") == "quality"]
