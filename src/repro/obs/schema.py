"""Trace record schema (``scwsc-trace/1``) and validator.

CI's trace-smoke step and ``scwsc trace validate`` run every JSONL line
through :func:`validate_record`; a trace file that fails here is a bug
in an emitter, not in the consumer. The module doubles as a CLI::

    python -m repro.obs.schema out.jsonl

exiting non-zero (with one line per problem) when any record is invalid.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.obs.trace import SCHEMA

_RECORD_TYPES = frozenset(
    {"meta", "span", "event", "metrics", "profile", "quality"}
)

#: Legal ``profile_kind`` values for ``profile`` records.
PROFILE_KINDS = frozenset({"cprofile", "memory", "rss"})

_NUMBER = (int, float)


def _check_attrs(record: dict[str, Any], problems: list[str]) -> None:
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        problems.append(f"attrs must be an object, got {type(attrs).__name__}")


def validate_record(record: Any) -> list[str]:
    """Return a list of problems (empty when the record is valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    rtype = record.get("type")
    if rtype not in _RECORD_TYPES:
        return [f"unknown record type {rtype!r}"]

    if rtype == "meta":
        if record.get("schema") != SCHEMA:
            problems.append(
                f"meta.schema must be {SCHEMA!r}, got {record.get('schema')!r}"
            )
        if not isinstance(record.get("wall_time_unix"), _NUMBER):
            problems.append("meta.wall_time_unix must be a number")
        _check_attrs(record, problems)
        return problems

    if rtype == "span":
        if not isinstance(record.get("name"), str) or not record.get("name"):
            problems.append("span.name must be a non-empty string")
        if not isinstance(record.get("span_id"), (str, int)):
            problems.append("span.span_id must be a string or int")
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, (str, int)):
            problems.append("span.parent_id must be a string, int, or null")
        for key in ("t_start", "t_end", "duration"):
            if not isinstance(record.get(key), _NUMBER):
                problems.append(f"span.{key} must be a number")
        if (
            isinstance(record.get("t_start"), _NUMBER)
            and isinstance(record.get("t_end"), _NUMBER)
            and record["t_end"] < record["t_start"]
        ):
            problems.append("span.t_end must be >= span.t_start")
        _check_attrs(record, problems)
        return problems

    if rtype == "event":
        if not isinstance(record.get("name"), str) or not record.get("name"):
            problems.append("event.name must be a non-empty string")
        if not isinstance(record.get("t"), _NUMBER):
            problems.append("event.t must be a number")
        _check_attrs(record, problems)
        return problems

    if rtype == "profile":
        if not isinstance(record.get("t"), _NUMBER):
            problems.append("profile.t must be a number")
        kind = record.get("profile_kind")
        if kind not in PROFILE_KINDS:
            problems.append(
                f"profile.profile_kind must be one of "
                f"{sorted(PROFILE_KINDS)}, got {kind!r}"
            )
        if not isinstance(record.get("scope"), str) or not record.get("scope"):
            problems.append("profile.scope must be a non-empty string")
        if not isinstance(record.get("data"), dict):
            problems.append("profile.data must be an object")
        span_id = record.get("span_id")
        if span_id is not None and not isinstance(span_id, (str, int)):
            problems.append("profile.span_id must be a string, int, or null")
        return problems

    if rtype == "quality":
        if not isinstance(record.get("t"), _NUMBER):
            problems.append("quality.t must be a number")
        if (
            not isinstance(record.get("algorithm"), str)
            or not record.get("algorithm")
        ):
            problems.append("quality.algorithm must be a non-empty string")
        quality = record.get("quality")
        if not isinstance(quality, dict):
            problems.append("quality.quality must be an object")
        else:
            for key, value in quality.items():
                if value is not None and not isinstance(
                    value, (bool, int, float)
                ):
                    problems.append(
                        f"quality.quality[{key!r}] must be a number, "
                        f"bool, or null"
                    )
        return problems

    # metrics
    if not isinstance(record.get("t"), _NUMBER):
        problems.append("metrics.t must be a number")
    if not isinstance(record.get("metrics"), dict):
        problems.append("metrics.metrics must be an object")
    return problems


def find_orphan_spans(records: list[Any]) -> list[str]:
    """Span ids whose ``parent_id`` names a span that never appears.

    The stitching pipeline (worker replay prefixes, shard re-parenting)
    guarantees zero orphans in a well-formed trace; an orphan means a
    replay prefix or ``root_parent`` went wrong, which the shape-only
    schema check cannot see. Order follows the file; each id reports
    once.
    """
    span_ids = {
        record.get("span_id")
        for record in records
        if isinstance(record, dict) and record.get("type") == "span"
    }
    orphans: list[str] = []
    for record in records:
        if not isinstance(record, dict) or record.get("type") != "span":
            continue
        parent = record.get("parent_id")
        if parent is not None and parent not in span_ids:
            orphans.append(
                f"span {record.get('span_id')!r} has parent {parent!r} "
                f"which never appears"
            )
    return orphans


def validate_trace_file(path: str, strict: bool = False) -> list[str]:
    """Validate every line of a JSONL trace; returns ``line N: problem``
    strings. An empty file is a problem (a trace always has its meta
    record), as is a missing leading meta record. With ``strict=True``
    the span tree is also checked for orphans (every ``parent_id`` must
    name a span present in the file)."""
    problems: list[str] = []
    n_records = 0
    records: list[Any] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            n_records += 1
            records.append(record)
            if n_records == 1 and record.get("type") != "meta":
                problems.append(
                    f"line {lineno}: first record must be type 'meta', "
                    f"got {record.get('type')!r}"
                )
            for problem in validate_record(record):
                problems.append(f"line {lineno}: {problem}")
    if n_records == 0:
        problems.append("trace file contains no records")
    if strict:
        problems.extend(
            f"orphan: {orphan}" for orphan in find_orphan_spans(records)
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    strict = "--strict" in args
    if strict:
        args.remove("--strict")
    if len(args) != 1:
        print(
            "usage: python -m repro.obs.schema [--strict] TRACE.jsonl",
            file=sys.stderr,
        )
        return 2
    problems = validate_trace_file(args[0], strict=strict)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{args[0]}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{args[0]}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
