"""Span-integrated profiling: where the time and memory go *inside* a phase.

The span tracer answers "how long did ``solve`` take"; this module
answers the next question an operator asks — which functions burned that
time, and what did the phase allocate. Activated by ``--profile`` on the
CLI (``solve``/``run``/``batch``/``bench``), it attaches to the tracer's
span hooks (:func:`repro.obs.trace.add_span_hook`) and:

* runs a :mod:`cProfile` profiler across each **outermost** profiled
  span (``solve``, ``lp_relaxation``, ...), aggregating per-function
  stats per span name — nested phase spans fold into their root phase,
  so the profiler is enabled/disabled exactly once per solve and never
  toggles inside the hot selection loop;
* snapshots :mod:`tracemalloc` at every profiled span boundary,
  aggregating allocation deltas and peaks per phase name;
* reports the process's **peak RSS** (``ru_maxrss``) at :func:`stop`
  time — the same number pool workers ship home in their result frames
  (see :mod:`repro.resilience.pool.worker`), so parent and worker memory
  stories use one unit.

Everything lands in the trace file as ``profile`` records (schema
``scwsc-trace/1``, validated by :mod:`repro.obs.schema`), and
:func:`collapsed_stacks` turns the span tree plus the profile samples
into collapsed-stack lines (the ``flamegraph.pl`` / speedscope input
format) via ``scwsc trace flamegraph``.

When no session is started the module costs nothing: no hook is
registered and the tracer's hook tuple stays empty.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time
from typing import Any

from repro.obs import trace as obs_trace

#: Span names worth a profiler/memory snapshot. Deliberately excludes
#: ``select`` and other per-iteration spans: toggling cProfile thousands
#: of times per solve would perturb exactly the numbers being measured.
PHASE_SPANS = frozenset(
    {"solve", "preprocess", "budget_round", "lp_relaxation"}
)

#: Per-scope cap on functions kept in a ``cprofile`` record.
DEFAULT_TOP_N = 25


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so every consumer (profile records, pool result frames, the
    dashboard) sees bytes. ``None`` where :mod:`resource` is missing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(rss)
    return int(rss) * 1024


class ProfileSession:
    """One ``--profile`` activation: hooks, aggregates, and the report.

    Use through the module-level :func:`start` / :func:`stop` pair; the
    session itself is also usable directly in tests.
    """

    def __init__(self, top_n: int = DEFAULT_TOP_N):
        self.top_n = top_n
        self._depth = 0
        self._profiler: cProfile.Profile | None = None
        self._scope: str | None = None
        self._t0 = time.perf_counter()
        # scope -> func_label -> [ncalls, tottime, cumtime]
        self._cprofile: dict[str, dict[str, list[float]]] = {}
        # scope -> [samples, alloc_bytes, peak_bytes]
        self._memory: dict[str, list[float]] = {}
        self._mem_stack: list[tuple[str, int]] = []
        self._tracemalloc_started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        try:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
        except Exception:  # pragma: no cover - tracemalloc disabled builds
            pass
        obs_trace.add_span_hook(self._hook)

    def _hook(self, phase: str, span: Any) -> None:
        if span.name not in PHASE_SPANS:
            return
        if phase == "enter":
            self._enter(span)
        else:
            self._exit(span)

    def _enter(self, span: Any) -> None:
        self._depth += 1
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                current, _ = tracemalloc.get_traced_memory()
                if self._depth == 1:
                    tracemalloc.reset_peak()
                self._mem_stack.append((span.name, current))
        except Exception:  # pragma: no cover
            pass
        if self._depth == 1 and self._profiler is None:
            profiler = cProfile.Profile()
            try:
                profiler.enable()
            except (ValueError, RuntimeError):
                # Another profiler (a debugger, pytest plugin) owns the
                # hook; degrade to memory-only profiling.
                return
            self._profiler = profiler
            self._scope = span.name

    def _exit(self, span: Any) -> None:
        self._depth = max(0, self._depth - 1)
        try:
            import tracemalloc

            if self._mem_stack and self._mem_stack[-1][0] == span.name:
                _, at_enter = self._mem_stack.pop()
                if tracemalloc.is_tracing():
                    current, peak = tracemalloc.get_traced_memory()
                    entry = self._memory.setdefault(
                        span.name, [0, 0.0, 0.0]
                    )
                    entry[0] += 1
                    entry[1] += max(0, current - at_enter)
                    if self._depth == 0:
                        entry[2] = max(entry[2], peak)
        except Exception:  # pragma: no cover
            pass
        if self._depth == 0 and self._profiler is not None:
            profiler, scope = self._profiler, self._scope or span.name
            self._profiler = None
            self._scope = None
            try:
                profiler.disable()
            except (ValueError, RuntimeError):  # pragma: no cover
                return
            self._aggregate(scope, profiler)

    def _aggregate(self, scope: str, profiler: cProfile.Profile) -> None:
        stats = pstats.Stats(profiler)
        bucket = self._cprofile.setdefault(scope, {})
        for (filename, lineno, funcname), entry in stats.stats.items():
            _, ncalls, tottime, cumtime, _ = entry
            short = filename.rsplit("/", 1)[-1]
            label = f"{short}:{lineno}:{funcname}"
            agg = bucket.get(label)
            if agg is None:
                bucket[label] = [ncalls, tottime, cumtime]
            else:
                agg[0] += ncalls
                agg[1] += tottime
                agg[2] += cumtime

    # ------------------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """The session's ``profile`` records (schema ``scwsc-trace/1``)."""
        t = round(time.perf_counter() - self._t0, 6)
        out: list[dict[str, Any]] = []
        for scope, functions in sorted(self._cprofile.items()):
            top = sorted(
                functions.items(), key=lambda item: -item[1][1]
            )[: self.top_n]
            out.append(
                {
                    "type": "profile",
                    "profile_kind": "cprofile",
                    "scope": scope,
                    "t": t,
                    "data": {
                        "functions": [
                            {
                                "func": label,
                                "ncalls": int(ncalls),
                                "tottime": round(tottime, 6),
                                "cumtime": round(cumtime, 6),
                            }
                            for label, (ncalls, tottime, cumtime) in top
                        ],
                        "n_functions": len(functions),
                    },
                }
            )
        for scope, (samples, alloc, peak) in sorted(self._memory.items()):
            out.append(
                {
                    "type": "profile",
                    "profile_kind": "memory",
                    "scope": scope,
                    "t": t,
                    "data": {
                        "samples": int(samples),
                        "alloc_bytes": int(alloc),
                        "peak_bytes": int(peak),
                    },
                }
            )
        rss = peak_rss_bytes()
        if rss is not None:
            out.append(
                {
                    "type": "profile",
                    "profile_kind": "rss",
                    "scope": "process",
                    "t": t,
                    "data": {"peak_rss_bytes": rss, "process": "parent"},
                }
            )
        return out

    def stop(self) -> list[dict[str, Any]]:
        """Detach hooks, stop tracemalloc, emit and return the records.

        Records are written into the configured tracer (if any) so a
        ``--profile --trace`` run produces one self-contained file.
        """
        obs_trace.remove_span_hook(self._hook)
        if self._profiler is not None:  # stop() mid-span: close it out
            try:
                self._profiler.disable()
            except (ValueError, RuntimeError):  # pragma: no cover
                pass
            self._aggregate(self._scope or "solve", self._profiler)
            self._profiler = None
        records = self.records()
        if self._tracemalloc_started:
            try:
                import tracemalloc

                tracemalloc.stop()
            except Exception:  # pragma: no cover
                pass
            self._tracemalloc_started = False
        tracer = obs_trace.get_tracer()
        if tracer is not None:
            for record in records:
                tracer.write_raw(record)
        return records


# ---------------------------------------------------------------------------
# Module-level session (the CLI path).
# ---------------------------------------------------------------------------

_SESSION: ProfileSession | None = None


def start(top_n: int = DEFAULT_TOP_N) -> ProfileSession:
    """Start the global profiling session (replacing any previous one)."""
    global _SESSION
    if _SESSION is not None:
        _SESSION.stop()
    _SESSION = ProfileSession(top_n=top_n)
    _SESSION.start()
    return _SESSION


def stop() -> list[dict[str, Any]]:
    """Stop the global session; returns (and traces) its records."""
    global _SESSION
    if _SESSION is None:
        return []
    session, _SESSION = _SESSION, None
    return session.stop()


def enabled() -> bool:
    return _SESSION is not None


# ---------------------------------------------------------------------------
# Collapsed-stack (flamegraph) export.
# ---------------------------------------------------------------------------


def collapsed_stacks(
    records: list[dict[str, Any]], include_cprofile: bool = True
) -> list[str]:
    """Render a trace's span tree as collapsed-stack lines.

    One line per unique root-to-span path, ``a;b;c <value>``, where the
    value is the span's **self time** in microseconds summed over every
    occurrence of that path — the exact input format of ``flamegraph.pl``
    and speedscope. With ``include_cprofile`` the per-function samples
    from ``profile`` records are appended under a ``cpu:<scope>`` root
    (kept apart from the wall-clock stacks: cProfile tottime and span
    self-time overlap but are not the same measure).
    """
    spans = {
        r["span_id"]: r
        for r in records
        if r.get("type") == "span" and r.get("span_id") is not None
    }
    child_durations: dict[Any, float] = {}
    for record in spans.values():
        parent = record.get("parent_id")
        if parent in spans:
            child_durations[parent] = child_durations.get(
                parent, 0.0
            ) + float(record.get("duration", 0.0))

    def path(record: dict[str, Any]) -> str:
        names = [record["name"]]
        seen = {record["span_id"]}
        parent = record.get("parent_id")
        while parent in spans and parent not in seen:
            seen.add(parent)
            names.append(spans[parent]["name"])
            parent = spans[parent].get("parent_id")
        return ";".join(reversed(names))

    totals: dict[str, int] = {}
    for span_id, record in spans.items():
        self_time = float(record.get("duration", 0.0)) - child_durations.get(
            span_id, 0.0
        )
        micros = int(round(max(0.0, self_time) * 1e6))
        if micros <= 0:
            continue
        key = path(record)
        totals[key] = totals.get(key, 0) + micros
    if include_cprofile:
        for record in records:
            if (
                record.get("type") != "profile"
                or record.get("profile_kind") != "cprofile"
            ):
                continue
            scope = record.get("scope", "profile")
            for entry in record.get("data", {}).get("functions", []):
                micros = int(round(float(entry.get("tottime", 0.0)) * 1e6))
                if micros <= 0:
                    continue
                key = f"cpu:{scope};{entry.get('func', '?')}"
                totals[key] = totals.get(key, 0) + micros
    return [f"{key} {value}" for key, value in sorted(totals.items())]


def profile_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The ``profile`` records of a loaded trace, in file order."""
    return [r for r in records if r.get("type") == "profile"]
