"""Span tracer: nested monotonic-clock spans with a JSONL sink.

Design constraints, in order:

1. **Near-free when disabled.** The default state is "no tracer
   configured". ``enabled()`` is a single global read; ``span(...)``
   returns the shared :data:`NULL_SPAN` whose ``__enter__``/``__exit__``
   do nothing. Hot loops (per-selection, per-update) must pre-fetch
   ``traced = trace.enabled()`` once and only build attribute dicts when
   it is true — the instrumented call sites follow the pattern::

       traced = trace.enabled()
       ...
       with trace.span("select", pick=i) if traced else trace.NULL_SPAN:
           ...

2. **Correct nesting without threading a context object.** The current
   span is a :mod:`contextvars` ContextVar, so spans nest correctly
   across threads and the pool's single-threaded select loop alike, and
   solver code never needs a ``trace=`` parameter.

3. **One line per record, flushed.** The sink is JSONL so a killed
   worker or a Ctrl-C leaves a readable prefix; the supervisor replays
   worker-captured records into the same file (see :func:`replay`)
   instead of letting two processes interleave writes.

Record shapes (schema ``scwsc-trace/1``, validated by
:mod:`repro.obs.schema`):

* ``{"type": "meta", "schema": "scwsc-trace/1", "wall_time_unix": ...,
  "t": 0.0, "attrs": {...}}`` — first record, written by
  :func:`configure`.
* ``{"type": "span", "name", "span_id", "parent_id", "t_start",
  "t_end", "duration", "attrs"}`` — written when the span closes, so
  records appear in *completion* order; ``parent_id`` reconstructs the
  tree.
* ``{"type": "event", "name", "t", "attrs"}`` — a point-in-time fact
  (pool lifecycle, breaker transition, tracker update).
* ``{"type": "metrics", "t", "metrics": {...}}`` — a registry snapshot,
  usually written once at shutdown.
* ``{"type": "profile", "t", "profile_kind", "scope", "data": {...}}`` —
  a profiling sample (cProfile aggregate, tracemalloc snapshot, or
  peak-RSS report), written by :mod:`repro.obs.profile`.
* ``{"type": "quality", "t", "algorithm", "quality": {...}}`` — one
  solve's solution-quality telemetry (approximation ratio vs. the LP
  bound, coverage slack, sets used vs. ``k``), written by
  :mod:`repro.obs.quality`.

All ``t`` values are seconds relative to the tracer's start on the
monotonic clock (``time.perf_counter``); ``wall_time_unix`` in the meta
record anchors them to wall time.
"""

from __future__ import annotations

import contextlib
import io
import json
import re
import secrets
import threading
import time
from contextvars import ContextVar
from typing import Any, Iterator

SCHEMA = "scwsc-trace/1"

_current_span_id: ContextVar[str | None] = ContextVar(
    "repro_obs_current_span", default=None
)


# ---------------------------------------------------------------------------
# W3C-style trace context: the cross-process identity of one request.
# ---------------------------------------------------------------------------

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh 32-hex-char (128-bit) trace id."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 16-hex-char (64-bit) span id."""
    return secrets.token_hex(8)


class TraceContext:
    """Request-scoped identity carried across process boundaries.

    Mirrors the W3C ``traceparent`` triple: a 128-bit ``trace_id``
    naming the whole request, a 64-bit ``span_id`` naming the caller's
    span, and a flags byte (``01`` = sampled). Serialized on pool frames
    so worker- and shard-side spans replay under the originating
    request's trace id instead of a synthetic per-request counter.
    """

    __slots__ = ("trace_id", "span_id", "flags")

    def __init__(self, trace_id: str, span_id: str, flags: str = "01"):
        self.trace_id = trace_id
        self.span_id = span_id
        self.flags = flags

    @classmethod
    def mint(cls) -> "TraceContext":
        return cls(new_trace_id(), new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh caller span id — for outbound hops."""
        return TraceContext(self.trace_id, new_span_id(), self.flags)

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-{self.flags}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.to_traceparent()!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.flags == other.flags
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a W3C ``traceparent`` header; None when absent or invalid.

    Invalid headers are dropped (the edge mints a fresh context) rather
    than rejected — a malformed upstream header must never fail a solve.
    An all-zero trace or span id is invalid per the spec.
    """
    if not header:
        return None
    m = _TRACEPARENT_RE.match(header.strip().lower())
    if m is None:
        return None
    version, trace_id, span_id, flags = m.groups()
    if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id, flags)


_current_context: ContextVar[TraceContext | None] = ContextVar(
    "repro_obs_trace_context", default=None
)


def get_context() -> TraceContext | None:
    """The trace context bound to the current thread/task, if any."""
    return _current_context.get()


def current_span_id() -> str | None:
    """The id of the innermost open span, if any — used to re-parent
    replayed shard/worker subtrees under the live span."""
    return _current_span_id.get()


def set_context(ctx: TraceContext | None) -> Any:
    """Bind ``ctx`` as the current trace context; returns a reset token."""
    return _current_context.set(ctx)


def reset_context(token: Any) -> None:
    """Undo a :func:`set_context` using its returned token."""
    _current_context.reset(token)


@contextlib.contextmanager
def context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Scope ``ctx`` as the current trace context for a ``with`` block."""
    token = _current_context.set(ctx)
    try:
        yield ctx
    finally:
        _current_context.reset(token)

#: Observers notified on every real span open/close — the profiling layer
#: (:mod:`repro.obs.profile`) attaches here. Empty by default, so the
#: per-span cost of the feature is one global load and a truth test, and
#: the disabled-tracing path (NULL_SPAN) never touches it at all.
_SPAN_HOOKS: tuple = ()


def add_span_hook(hook) -> None:
    """Register ``hook(phase, span)`` to observe span lifecycles.

    ``phase`` is ``"enter"`` or ``"exit"``; ``span`` is the live
    :class:`Span`. Hooks run inline on the traced thread — keep them
    cheap and never let them raise.
    """
    global _SPAN_HOOKS
    if hook not in _SPAN_HOOKS:
        _SPAN_HOOKS = _SPAN_HOOKS + (hook,)


def remove_span_hook(hook) -> None:
    global _SPAN_HOOKS
    _SPAN_HOOKS = tuple(h for h in _SPAN_HOOKS if h is not hook)


class JsonlSink:
    """Writes one JSON object per line to a file or stream, flushing each.

    Flushing per record costs a syscall but means a SIGKILL'd process
    (the pool does that on purpose) leaves a valid, parseable prefix.
    """

    def __init__(self, target: str | io.TextIOBase):
        if isinstance(target, str):
            self._fh: Any = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._lock = threading.Lock()

    def write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._owns:
            self._fh.close()


class MemorySink:
    """Collects records in a list — used by workers and the bench harness
    to capture a run's trace for shipping/rollup without touching disk."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def write(self, record: dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def close(self) -> None:  # pragma: no cover - symmetry with JsonlSink
        pass


class Span:
    """A live span. Use via ``with tracer.span(...)`` / ``trace.span(...)``.

    ``enabled`` is a class attribute so call sites can guard attribute
    computation with ``if sp.enabled:`` and the guard costs one
    attribute load for both real and null spans.
    """

    enabled = True

    __slots__ = ("_tracer", "name", "span_id", "attrs", "_t_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.attrs = attrs
        self._t_start = 0.0
        self._token: Any = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an event parented (by time, not id) inside this span."""
        self._tracer.event(name, **attrs)

    def __enter__(self) -> "Span":
        parent = _current_span_id.get()
        self.attrs.setdefault("_parent", parent)
        self._t_start = self._tracer.now()
        self._token = _current_span_id.set(self.span_id)
        if _SPAN_HOOKS:
            for hook in _SPAN_HOOKS:
                hook("enter", self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        t_end = self._tracer.now()
        _current_span_id.reset(self._token)
        if _SPAN_HOOKS:
            for hook in _SPAN_HOOKS:
                hook("exit", self)
        attrs = self.attrs
        parent = attrs.pop("_parent", None)
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        self._tracer._write(
            {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": parent,
                "t_start": round(self._t_start, 6),
                "t_end": round(t_end, 6),
                "duration": round(t_end - self._t_start, 6),
                "attrs": attrs,
            }
        )


class _NullSpan:
    """Shared no-op span returned whenever tracing is disabled."""

    enabled = False

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns a sink, a monotonic epoch, and the span id counter."""

    def __init__(
        self,
        sink: JsonlSink | MemorySink,
        *,
        id_prefix: str = "s",
        write_meta: bool = True,
        meta_attrs: dict[str, Any] | None = None,
    ):
        self._sink = sink
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._counter = 0
        self._id_prefix = id_prefix
        if write_meta:
            self._write(
                {
                    "type": "meta",
                    "schema": SCHEMA,
                    "wall_time_unix": round(time.time(), 3),
                    "t": 0.0,
                    "attrs": meta_attrs or {},
                }
            )

    def now(self) -> float:
        return time.perf_counter() - self._t0

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self._id_prefix}{self._counter}"

    def _write(self, record: dict[str, Any]) -> None:
        self._sink.write(record)
        ring = _RING_TRACER
        if ring is not None and ring is not self:
            ring._sink.write(record)

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self._write(
            {
                "type": "event",
                "name": name,
                "t": round(self.now(), 6),
                "attrs": attrs,
            }
        )

    def write_metrics(self, snapshot: dict[str, Any]) -> None:
        self._write(
            {
                "type": "metrics",
                "t": round(self.now(), 6),
                "metrics": snapshot,
            }
        )

    def write_raw(self, record: dict[str, Any]) -> None:
        """Write a pre-built record verbatim (used by :func:`replay`)."""
        self._write(record)

    def close(self) -> None:
        self._sink.close()


# ---------------------------------------------------------------------------
# Module-level tracer: the fast path all instrumentation goes through.
# ---------------------------------------------------------------------------

_TRACER: Tracer | None = None

#: Secondary always-on channel for the flight recorder. Deliberately NOT
#: consulted by :func:`enabled` — hot loops guarded by ``enabled()`` must
#: stay byte-identical whether or not a ring is armed, which is what
#: keeps the recorder inside its <2% overhead budget. Coarse call sites
#: (one span per HTTP request, pool lifecycle events) flow into the ring
#: through the fallbacks in :func:`span`/:func:`event`/:func:`write_raw`,
#: and every record written through a full tracer is teed into the ring
#: so ``--trace`` runs and ring-only runs see the same stream.
_RING_TRACER: Tracer | None = None


def set_ring(sink: Any) -> Tracer:
    """Install ``sink`` (anything with ``write(record)``) as the ring
    channel. Returns the internal tracer so callers can mint span ids."""
    global _RING_TRACER
    _RING_TRACER = Tracer(sink, id_prefix="fr", write_meta=False)
    return _RING_TRACER


def clear_ring() -> None:
    """Uninstall the ring channel (the sink itself is not closed —
    ring buffers have no resources to release)."""
    global _RING_TRACER
    _RING_TRACER = None


def ring_active() -> bool:
    """True when a flight-recorder ring sink is installed."""
    return _RING_TRACER is not None


def recording() -> bool:
    """True when *any* channel — full tracer or ring — will observe
    records. Coarse call sites (per-dispatch events, RSS samples) guard
    on this; per-iteration hot loops keep guarding on :func:`enabled`."""
    return _TRACER is not None or _RING_TRACER is not None


def configure(
    target: str | io.TextIOBase, **meta_attrs: Any
) -> Tracer:
    """Install a global tracer writing JSONL to ``target``.

    Replaces (and closes) any previously configured tracer. ``meta_attrs``
    land in the leading meta record (command line, dataset, config, ...).
    """
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(JsonlSink(target), meta_attrs=meta_attrs)
    return _TRACER


def shutdown(metrics_snapshot: dict[str, Any] | None = None) -> None:
    """Flush and uninstall the global tracer.

    When ``metrics_snapshot`` is given it is written as the final
    ``metrics`` record so a trace file is self-contained.
    """
    global _TRACER
    if _TRACER is None:
        return
    if metrics_snapshot is not None:
        _TRACER.write_metrics(metrics_snapshot)
    _TRACER.close()
    _TRACER = None


def enabled() -> bool:
    """True when a global tracer is installed. One global read — hot
    loops fetch this once per solve/round, not per iteration."""
    return _TRACER is not None


def get_tracer() -> Tracer | None:
    return _TRACER


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open a span on the global tracer, or return :data:`NULL_SPAN`.

    Note the kwargs dict is built by the *caller* before we can check
    ``enabled()`` — per-iteration call sites must guard with
    ``if traced:`` themselves (see module docstring)."""
    tracer = _TRACER
    if tracer is None:
        tracer = _RING_TRACER
        if tracer is None:
            return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    tracer = _TRACER or _RING_TRACER
    if tracer is not None:
        tracer.event(name, **attrs)


def write_raw(record: dict[str, Any]) -> None:
    tracer = _TRACER or _RING_TRACER
    if tracer is not None:
        tracer.write_raw(record)


def replay(
    records: list[dict[str, Any]],
    *,
    prefix: str = "",
    root_parent: str | None = None,
    **attrs: Any,
) -> None:
    """Re-emit captured records (from a worker or a :func:`capture`)
    into the global tracer.

    ``prefix`` namespaces span ids so records from different workers
    cannot collide (the supervisor uses the request's trace id when one
    exists, else ``r<request_id>a<attempt>.``); ``root_parent``
    re-parents the capture's root spans (``parent_id`` None) under an
    existing span id, stitching the worker subtree onto the request's
    edge span so the whole request is one tree; ``attrs`` are merged
    into every record's ``attrs`` so a pool run's spans carry
    ``request_id``/``worker`` without the worker knowing either.
    """
    tracer = _TRACER
    if tracer is None:
        return
    for record in records:
        rec = dict(record)
        if rec.get("type") == "meta":
            continue  # the outer trace already has its meta record
        if "span_id" in rec:
            if prefix and rec["span_id"] is not None:
                rec["span_id"] = f"{prefix}{rec['span_id']}"
            if rec.get("parent_id") is not None:
                if prefix:
                    rec["parent_id"] = f"{prefix}{rec['parent_id']}"
            elif root_parent is not None:
                rec["parent_id"] = root_parent
        if attrs:
            merged = dict(rec.get("attrs") or {})
            merged.update(attrs)
            rec["attrs"] = merged
        tracer.write_raw(rec)


@contextlib.contextmanager
def capture() -> Iterator[list[dict[str, Any]]]:
    """Temporarily install a memory-sink tracer and yield its records.

    Used by pool workers (records ship home in the result frame) and by
    the bench harness (records roll up into per-phase timings). The
    previous tracer, if any, is restored on exit.
    """
    global _TRACER
    previous = _TRACER
    sink = MemorySink()
    _TRACER = Tracer(sink, write_meta=False)
    try:
        yield sink.records
    finally:
        _TRACER = previous
