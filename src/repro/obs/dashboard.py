"""Static HTML run dashboard: one trace, one file, no dependencies.

``scwsc report run.jsonl -o report.html`` renders a finished run's trace
(plus, optionally, the bench history file) into a single self-contained
HTML page — inline CSS, inline SVG, no JavaScript frameworks, no CDN —
so the file can be attached to a CI run or mailed around and still open
a year later. Panels:

* **span waterfall** — every span as a bar positioned on the run's
  monotonic clock, indented by tree depth, so pool retries and phase
  nesting are visible at a glance;
* **self-time table** — the :func:`repro.obs.report.phase_rollups`
  rollup including self time (duration minus direct children);
* **quality panel** — the ``quality`` trace records (approximation
  ratio vs. the LP bound, coverage slack, sets used vs. ``k``) next to
  the closing metrics snapshot;
* **profile panel** — top functions per profiled phase and the memory /
  peak-RSS samples, when the run used ``--profile``;
* **bench trends** — per-cell sparklines of ``median_seconds`` and the
  approximation ratio over ``BENCH_history.jsonl``;
* **postmortems** — trigger/reason/ring-occupancy summaries of
  ``scwsc-postmortem/1`` flight-recorder bundles passed via
  ``--postmortem``.

Everything here is string assembly over already-loaded records; the
heavy lifting (rollups, quality math) lives in the sibling modules.
"""

from __future__ import annotations

import html
import json
from typing import Any

from repro.obs.report import event_counts, phase_rollups

_CSS = """
  body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
         sans-serif; margin: 1.5rem; color: #1a1a2e; background: #fafafa; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem;
       border-bottom: 1px solid #ddd; padding-bottom: 0.2rem; }
  table { border-collapse: collapse; font-size: 0.85rem; }
  th, td { padding: 0.25rem 0.7rem; text-align: right;
           border-bottom: 1px solid #eee; }
  th { background: #f0f0f5; } td.name, th.name { text-align: left;
       font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
  .waterfall { position: relative; font-size: 0.75rem;
               font-family: ui-monospace, Menlo, monospace; }
  .lane { position: relative; height: 18px; margin: 1px 0; }
  .bar { position: absolute; height: 16px; border-radius: 3px;
         background: #4c72b0; color: #fff; overflow: hidden;
         white-space: nowrap; padding: 1px 4px; box-sizing: border-box;
         min-width: 2px; }
  .bar.d1 { background: #55a868; } .bar.d2 { background: #c44e52; }
  .bar.d3 { background: #8172b2; } .bar.d4 { background: #ccb974; }
  .muted { color: #888; font-size: 0.8rem; }
  .ok { color: #2e7d32; } .bad { color: #c62828; }
  svg.spark { vertical-align: middle; }
  .panel { background: #fff; border: 1px solid #e5e5ee; border-radius:
           6px; padding: 0.8rem 1rem; margin-top: 0.6rem; }
"""

_MAX_WATERFALL_SPANS = 400


def _fmt(value: Any, digits: int = 4) -> str:
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return html.escape(str(value))


def _span_depths(spans: list[dict[str, Any]]) -> dict[Any, int]:
    by_id = {s.get("span_id"): s for s in spans}
    depths: dict[Any, int] = {}

    def depth(span_id: Any) -> int:
        if span_id in depths:
            return depths[span_id]
        span = by_id.get(span_id)
        parent = span.get("parent_id") if span else None
        depths[span_id] = 0 if parent not in by_id else depth(parent) + 1
        return depths[span_id]

    for span in spans:
        depth(span.get("span_id"))
    return depths


def _waterfall(records: list[dict[str, Any]]) -> str:
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        return '<p class="muted">no spans in trace</p>'
    spans.sort(key=lambda s: float(s.get("t_start", 0.0)))
    clipped = len(spans) > _MAX_WATERFALL_SPANS
    if clipped:
        spans = sorted(
            spans, key=lambda s: -float(s.get("duration", 0.0))
        )[:_MAX_WATERFALL_SPANS]
        spans.sort(key=lambda s: float(s.get("t_start", 0.0)))
    t0 = min(float(s.get("t_start", 0.0)) for s in spans)
    t1 = max(float(s.get("t_end", 0.0)) for s in spans)
    extent = max(t1 - t0, 1e-9)
    depths = _span_depths(spans)
    rows: list[str] = []
    for span in spans:
        start = float(span.get("t_start", 0.0))
        duration = float(span.get("duration", 0.0))
        left = 100.0 * (start - t0) / extent
        width = max(100.0 * duration / extent, 0.15)
        depth = depths.get(span.get("span_id"), 0)
        name = html.escape(str(span.get("name", "?")))
        title = html.escape(
            f"{span.get('name')} [{span.get('span_id')}] "
            f"{duration * 1000:.3f} ms "
            + " ".join(
                f"{k}={v}" for k, v in sorted((span.get("attrs") or {}).items())
            )
        )
        rows.append(
            f'<div class="lane"><div class="bar d{min(depth, 4)}" '
            f'style="left:{left:.3f}%;width:{width:.3f}%" '
            f'title="{title}">{name}</div></div>'
        )
    note = (
        f'<p class="muted">showing the {_MAX_WATERFALL_SPANS} longest '
        f"spans</p>"
        if clipped
        else ""
    )
    return (
        f'<p class="muted">{len(spans)} spans over {extent:.4f} s</p>'
        f'{note}<div class="waterfall">{"".join(rows)}</div>'
    )


def _self_time_table(records: list[dict[str, Any]]) -> str:
    rollups = phase_rollups(records)
    if not rollups:
        return '<p class="muted">no spans in trace</p>'
    rows = []
    for name, entry in sorted(
        rollups.items(), key=lambda item: -item[1].get("self", 0.0)
    ):
        rows.append(
            f'<tr><td class="name">{html.escape(name)}</td>'
            f"<td>{int(entry['count'])}</td>"
            f"<td>{entry['total']:.4f}</td>"
            f"<td>{entry.get('self', 0.0):.4f}</td>"
            f"<td>{entry['mean']:.6f}</td>"
            f"<td>{entry['max']:.6f}</td></tr>"
        )
    return (
        '<table><tr><th class="name">phase</th><th>count</th>'
        "<th>total_s</th><th>self_s</th><th>mean_s</th><th>max_s</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _ratio_bar(ratio: float | None, scale: float = 3.0) -> str:
    """A tiny inline bar chart: ratio 1.0 fills one third of the track."""
    if ratio is None:
        return ""
    frac = min(ratio / scale, 1.0)
    colour = "#55a868" if ratio <= 1.5 else "#c44e52"
    return (
        '<svg class="spark" width="90" height="10">'
        '<rect width="90" height="10" fill="#eee"/>'
        f'<rect width="{90 * frac:.1f}" height="10" fill="{colour}"/>'
        "</svg>"
    )


def _quality_panel(records: list[dict[str, Any]]) -> str:
    quality = [r for r in records if r.get("type") == "quality"]
    if not quality:
        return '<p class="muted">no quality records (older trace?)</p>'
    rows = []
    for record in quality:
        q = record.get("quality") or {}
        ratio = q.get("approx_ratio")
        slack = q.get("coverage_slack")
        slack_class = "bad" if (slack is not None and slack < 0) else "ok"
        feasible = q.get("feasible")
        rows.append(
            f'<tr><td class="name">{html.escape(str(record.get("algorithm")))}'
            f"</td><td>{_fmt(q.get('total_cost'))}</td>"
            f"<td>{_fmt(q.get('lp_bound'))}</td>"
            f"<td>{_fmt(ratio)} {_ratio_bar(ratio)}</td>"
            f'<td class="{slack_class}">{_fmt(slack)}</td>'
            f"<td>{_fmt(q.get('sets_used'))} / {_fmt(q.get('sets_budget'))}"
            f"</td><td class=\"{'ok' if feasible else 'bad'}\">"
            f"{_fmt(feasible)}</td></tr>"
        )
    return (
        '<table><tr><th class="name">algorithm</th><th>cost</th>'
        "<th>lp_bound</th><th>approx_ratio</th><th>coverage_slack</th>"
        "<th>sets k</th><th>feasible</th></tr>" + "".join(rows) + "</table>"
    )


def _profile_panel(records: list[dict[str, Any]]) -> str:
    profiles = [r for r in records if r.get("type") == "profile"]
    if not profiles:
        return (
            '<p class="muted">no profile records — run with '
            "<code>--profile</code></p>"
        )
    parts: list[str] = []
    for record in profiles:
        kind = record.get("profile_kind")
        scope = html.escape(str(record.get("scope")))
        data = record.get("data") or {}
        if kind == "cprofile":
            rows = "".join(
                f'<tr><td class="name">{html.escape(str(f.get("func")))}</td>'
                f"<td>{f.get('ncalls')}</td><td>{_fmt(f.get('tottime'), 6)}"
                f"</td><td>{_fmt(f.get('cumtime'), 6)}</td></tr>"
                for f in data.get("functions", [])[:12]
            )
            parts.append(
                f"<h3>cpu: {scope}</h3><table>"
                '<tr><th class="name">function</th><th>ncalls</th>'
                f"<th>tottime</th><th>cumtime</th></tr>{rows}</table>"
            )
        elif kind == "memory":
            parts.append(
                f'<p class="name">mem: {scope} — '
                f"alloc {data.get('alloc_bytes', 0):,} B over "
                f"{data.get('samples')} sample(s), peak "
                f"{data.get('peak_bytes', 0):,} B</p>"
            )
        elif kind == "rss":
            parts.append(
                f'<p class="name">rss: {scope} — peak '
                f"{data.get('peak_rss_bytes', 0):,} B "
                f"({html.escape(str(data.get('process', '')))})</p>"
            )
    return "".join(parts)


def _sparkline(values: list[float], width: int = 140, height: int = 28) -> str:
    if not values:
        return ""
    if len(values) == 1:
        values = values * 2
    low, high = min(values), max(values)
    extent = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (height - 4) * (v - low) / extent:.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#4c72b0" '
        'stroke-width="1.5"/></svg>'
    )


def _bench_trends(history: list[dict[str, Any]]) -> str:
    if not history:
        return (
            '<p class="muted">no bench history — run <code>scwsc bench'
            "</code> to start BENCH_history.jsonl</p>"
        )
    series: dict[str, dict[str, list[float | None]]] = {}
    for entry in history:
        for cell in entry.get("cells", []):
            bench_id = cell.get("bench_id")
            if not bench_id:
                continue
            slot = series.setdefault(bench_id, {"seconds": [], "ratio": []})
            slot["seconds"].append(cell.get("median_seconds"))
            slot["ratio"].append(cell.get("approx_ratio"))
    rows = []
    for bench_id, slot in sorted(series.items()):
        seconds = [v for v in slot["seconds"] if v is not None]
        ratios = [v for v in slot["ratio"] if v is not None]
        latest_s = seconds[-1] if seconds else None
        latest_r = ratios[-1] if ratios else None
        rows.append(
            f'<tr><td class="name">{html.escape(bench_id)}</td>'
            f"<td>{_fmt(latest_s, 5)}</td><td>{_sparkline(seconds)}</td>"
            f"<td>{_fmt(latest_r)}</td><td>{_sparkline(ratios)}</td></tr>"
        )
    return (
        f'<p class="muted">{len(history)} bench run(s) in history</p>'
        '<table><tr><th class="name">bench cell</th><th>median_s</th>'
        "<th>trend</th><th>approx_ratio</th><th>trend</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _postmortem_panel(bundles: list[dict[str, Any]]) -> str:
    if not bundles:
        return (
            '<p class="muted">no postmortem bundles — pass '
            "<code>--postmortem BUNDLE.json</code> (or a spool directory) "
            "to include flight-recorder dumps</p>"
        )
    parts: list[str] = []
    for bundle in bundles:
        trigger = html.escape(str(bundle.get("trigger", "?")))
        reason = html.escape(str(bundle.get("reason", "")))
        created = bundle.get("created_unix")
        created_s = _fmt(created, 3) if isinstance(created, (int, float)) else "–"
        source = bundle.get("_source")
        rings = bundle.get("rings") or {}
        occupancy = " · ".join(
            f"{html.escape(str(name))}×{len(ring.get('records') or [])}"
            for name, ring in sorted(rings.items())
            if isinstance(ring, dict)
        )
        workers = bundle.get("workers") or {}
        stacks = bundle.get("stacks") or {}
        samples = stacks.get("samples") or []
        context = bundle.get("context") or {}
        context_s = " ".join(
            f"{html.escape(str(k))}={html.escape(str(v))}"
            for k, v in sorted(context.items())
        )
        parts.append(
            f'<h3>{trigger} @ {created_s}</h3>'
            f'<p class="name">{reason}</p>'
            + (f'<p class="muted">{html.escape(str(source))}</p>' if source else "")
            + f'<p class="muted">rings: {occupancy or "empty"} · '
            f"worker rings: {len(workers)} · "
            f"stack samples: {len(samples)}</p>"
            + (f'<p class="muted">{context_s}</p>' if context_s else "")
        )
    return (
        f'<p class="muted">{len(bundles)} postmortem bundle(s)</p>'
        + "".join(parts)
    )


def _meta_line(records: list[dict[str, Any]]) -> str:
    meta = next((r for r in records if r.get("type") == "meta"), None)
    if meta is None:
        return ""
    attrs = meta.get("attrs") or {}
    described = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return (
        f'<p class="muted">schema {html.escape(str(meta.get("schema")))} '
        f"· {html.escape(described)}</p>"
    )


def _events_line(records: list[dict[str, Any]]) -> str:
    events = event_counts(records)
    if not events:
        return ""
    body = " · ".join(
        f"{html.escape(name)}×{count}"
        for name, count in sorted(events.items(), key=lambda kv: -kv[1])
    )
    return f'<p class="muted">events: {body}</p>'


def render_dashboard(
    records: list[dict[str, Any]] | None = None,
    history: list[dict[str, Any]] | None = None,
    title: str = "scwsc run report",
    postmortems: list[dict[str, Any]] | None = None,
) -> str:
    """The full dashboard page as one HTML string.

    ``records`` is a loaded trace (:func:`repro.obs.report.load_trace`);
    ``history`` is the parsed BENCH_history.jsonl entries
    (:func:`load_history`); ``postmortems`` is a list of loaded
    ``scwsc-postmortem/1`` bundles. Any may be ``None``/empty — the
    matching panels degrade to a hint instead of disappearing, so the
    page shape is stable for tooling that greps for panel ids.
    """
    records = records or []
    history = history or []
    postmortems = postmortems or []
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
{_meta_line(records)}
<h2>Span waterfall</h2>
<div id="waterfall" class="panel">{_waterfall(records)}</div>
<h2>Per-phase self time</h2>
<div id="self-time" class="panel">{_self_time_table(records)}
{_events_line(records)}</div>
<h2>Solution quality</h2>
<div id="quality" class="panel">{_quality_panel(records)}</div>
<h2>Profile</h2>
<div id="profile" class="panel">{_profile_panel(records)}</div>
<h2>Bench trends</h2>
<div id="bench-trends" class="panel">{_bench_trends(history)}</div>
<h2>Postmortems</h2>
<div id="postmortems" class="panel">{_postmortem_panel(postmortems)}</div>
</body>
</html>
"""


def load_history(path: str) -> list[dict[str, Any]]:
    """Parse a BENCH_history.jsonl file; tolerant of a missing file (an
    empty history, not an error) but not of corrupt lines."""
    entries: list[dict[str, Any]] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return entries
    with fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
