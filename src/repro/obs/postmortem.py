"""Postmortem bundles: triggered dumps of the flight recorder to disk.

A bundle (schema ``scwsc-postmortem/1``) is one self-contained JSON file
— everything an engineer needs to diagnose an incident after the process
is gone:

========================  =================================================
section                   contents
========================  =================================================
``schema``                always ``scwsc-postmortem/1``
``created_unix``          wall-clock seconds when the bundle was built
``trigger``               what fired (``worker_death``, ``hard_timeout``,
                          ``breaker_open``, ``slo_fast_burn``,
                          ``server_5xx``, ``manual``)
``reason``                one human-readable sentence
``context``               trigger-specific details (event attrs, burn
                          rates, status code, ...)
``build``                 version / python / backend (the same triple
                          ``scwsc_build_info`` exposes)
``config``                the live :class:`~repro.serve.config.ServeConfig`
                          as a dict, or None for manual CLI bundles
``rings``                 the flight recorder's span/event/access/metrics
                          rings (records + capacity/total/dropped)
``workers``               last ring shipped by each pool worker
``stacks``                a stack-sample burst plus collapsed-stack lines
``metrics``               a registry snapshot taken at build time
``triggers``              trigger-engine counters (fired / rate-limited /
                          deduped per kind)
========================  =================================================

The :class:`TriggerEngine` is the policy layer between the recorder and
the disk: per-trigger-kind rate limiting (an incident is one bundle, not
one per crash-looping worker restart), dedup on a caller-supplied key,
and a :class:`BundleSpool` that enforces byte and count caps by deleting
oldest-first — a crash loop can never fill the disk.

Bundle *builds* run on a short-lived daemon thread (a stack burst blocks
for ~100ms; the pool dispatcher that fires most triggers must not), but
rate-limit/dedup bookkeeping happens inline under the engine lock, so
"exactly one bundle per incident window" holds even when triggers race.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Callable

from repro.errors import ValidationError
from repro.obs import stacks as obs_stacks
from repro.obs.flightrec import FlightRecorder
from repro.obs.schema import validate_record

__all__ = [
    "POSTMORTEM_SCHEMA",
    "TRIGGER_KINDS",
    "build_bundle",
    "build_info",
    "validate_bundle",
    "validate_bundle_file",
    "redact_bundle",
    "BundleSpool",
    "TriggerEngine",
]

POSTMORTEM_SCHEMA = "scwsc-postmortem/1"

TRIGGER_KINDS = (
    "worker_death",
    "hard_timeout",
    "breaker_open",
    "slo_fast_burn",
    "server_5xx",
    "manual",
)

_REQUIRED_SECTIONS = (
    "schema",
    "created_unix",
    "trigger",
    "reason",
    "context",
    "build",
    "rings",
    "workers",
    "stacks",
    "metrics",
)

#: Header/config/context keys whose values are scrubbed by
#: :func:`redact_bundle` — substring match, case-insensitive.
_SENSITIVE_MARKERS = ("authorization", "cookie", "token", "secret", "password")


def build_info() -> dict[str, str]:
    import platform

    from repro import __version__
    from repro.core.marginal import BACKEND_ENV_VAR

    return {
        "version": __version__,
        "python": platform.python_version(),
        "backend": os.environ.get(BACKEND_ENV_VAR, "").strip() or "auto",
    }


def build_bundle(
    recorder: FlightRecorder,
    *,
    trigger: str,
    reason: str,
    context: dict[str, Any] | None = None,
    config: Any = None,
    metrics_snapshot: dict[str, Any] | None = None,
    trigger_stats: dict[str, Any] | None = None,
    stack_samples: int = 5,
    stack_interval: float = 0.02,
) -> dict[str, Any]:
    """Assemble one ``scwsc-postmortem/1`` bundle from live state.

    Takes a short stack-sample burst (blocking ~``stack_samples *
    stack_interval`` seconds — call off the hot path) and snapshots the
    recorder's rings, the worker rings, and the metrics registry.
    """
    if metrics_snapshot is None:
        from repro.obs.metrics import get_registry

        metrics_snapshot = get_registry().snapshot()
    if is_dataclass(config) and not isinstance(config, type):
        config = asdict(config)
    samples = obs_stacks.burst(stack_samples, stack_interval)
    return {
        "schema": POSTMORTEM_SCHEMA,
        "created_unix": round(time.time(), 3),
        "trigger": trigger,
        "reason": reason,
        "context": context or {},
        "build": build_info(),
        "config": config,
        "rings": recorder.snapshot(),
        "workers": {
            str(index): ring
            for index, ring in sorted(recorder.worker_rings().items())
        },
        "stacks": {
            "samples": samples,
            "collapsed": obs_stacks.collapse_samples(samples),
        },
        "metrics": metrics_snapshot,
        "triggers": trigger_stats or {},
    }


def validate_bundle(bundle: Any) -> list[str]:
    """Problems with one bundle; empty list when valid.

    Ring records are re-validated against their own schemas
    (``scwsc-trace/1`` for spans/events, ``scwsc-access/1`` for access
    records) so a bundle that validates is trustworthy all the way down.
    """
    # Imported here, not at module top: accesslog lives under
    # repro.serve, whose __init__ pulls in the server, which imports
    # this module — a top-level import would be circular.
    from repro.serve.accesslog import validate_access_record

    if not isinstance(bundle, dict):
        return [f"bundle must be an object, got {type(bundle).__name__}"]
    problems: list[str] = []
    if bundle.get("schema") != POSTMORTEM_SCHEMA:
        problems.append(
            f"schema must be {POSTMORTEM_SCHEMA!r}, got {bundle.get('schema')!r}"
        )
    for section in _REQUIRED_SECTIONS:
        if section not in bundle:
            problems.append(f"missing section {section!r}")
    if problems:
        return problems
    if bundle["trigger"] not in TRIGGER_KINDS:
        problems.append(
            f"trigger must be one of {TRIGGER_KINDS}, got {bundle['trigger']!r}"
        )
    if not isinstance(bundle["created_unix"], (int, float)) or isinstance(
        bundle["created_unix"], bool
    ):
        problems.append("created_unix must be a number")
    if not isinstance(bundle["reason"], str) or not bundle["reason"]:
        problems.append("reason must be a non-empty string")
    build = bundle["build"]
    if not isinstance(build, dict) or not all(
        isinstance(build.get(key), str) for key in ("version", "python", "backend")
    ):
        problems.append("build must carry string version/python/backend")

    rings = bundle["rings"]
    if not isinstance(rings, dict):
        problems.append("rings must be an object")
        return problems
    for name in ("spans", "events", "access", "metrics"):
        ring = rings.get(name)
        if not isinstance(ring, dict) or not isinstance(
            ring.get("records"), list
        ):
            problems.append(f"rings.{name} must carry a records list")
            continue
        for counter in ("capacity", "total", "dropped"):
            value = ring.get(counter)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"rings.{name}.{counter} must be an int")
    if problems:
        return problems

    for index, record in enumerate(rings["spans"]["records"]):
        if record.get("type") != "span":
            problems.append(f"rings.spans[{index}] is not a span record")
        else:
            problems.extend(
                f"rings.spans[{index}]: {problem}"
                for problem in validate_record(record)
            )
    for index, record in enumerate(rings["events"]["records"]):
        record_problems = validate_record(record)
        if record_problems:
            problems.extend(
                f"rings.events[{index}]: {problem}"
                for problem in record_problems
            )
    for index, record in enumerate(rings["access"]["records"]):
        problems.extend(
            f"rings.access[{index}]: {problem}"
            for problem in validate_access_record(record)
        )

    stacks = bundle["stacks"]
    if not isinstance(stacks, dict) or not isinstance(
        stacks.get("samples"), list
    ) or not isinstance(stacks.get("collapsed"), list):
        problems.append("stacks must carry samples and collapsed lists")
    else:
        for index, sample in enumerate(stacks["samples"]):
            if not isinstance(sample, dict) or not isinstance(
                sample.get("threads"), list
            ):
                problems.append(f"stacks.samples[{index}] malformed")

    if not isinstance(bundle["metrics"], dict):
        problems.append("metrics must be a registry snapshot object")
    if not isinstance(bundle["workers"], dict):
        problems.append("workers must be an object")
    return problems


def validate_bundle_file(path: str) -> dict[str, Any]:
    """Load and validate a bundle file; returns the bundle or raises
    :class:`ValidationError` with every problem found."""
    with open(path, encoding="utf-8") as handle:
        try:
            bundle = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValidationError(f"{path}: not valid JSON: {error}") from error
    problems = validate_bundle(bundle)
    if problems:
        raise ValidationError(
            f"{path}: {len(problems)} problem(s): " + "; ".join(problems[:10])
        )
    return bundle


def redact_bundle(bundle: dict[str, Any]) -> dict[str, Any]:
    """A deep copy with credential-shaped values scrubbed.

    Any string value under a key containing an obvious secret marker
    (``token``, ``authorization``, ...) anywhere in the bundle becomes
    ``"[redacted]"``. Bundles are built from telemetry the daemon
    already considers shareable, but CLI assembly redacts by default so
    attaching a bundle to a ticket is safe by construction.
    """

    def _scrub(value: Any, key_hint: str = "") -> Any:
        if isinstance(value, dict):
            return {key: _scrub(item, str(key).lower()) for key, item in value.items()}
        if isinstance(value, list):
            return [_scrub(item, key_hint) for item in value]
        if isinstance(value, str) and any(
            marker in key_hint for marker in _SENSITIVE_MARKERS
        ):
            return "[redacted]"
        return value

    return _scrub(bundle)


class BundleSpool:
    """Bounded on-disk bundle directory: byte cap + count cap.

    Bundles are single JSON files named
    ``postmortem-<unix_ms>-<trigger>.json``. :meth:`write` enforces both
    caps *after* adding the new bundle by deleting oldest-first, so the
    newest evidence always survives and the spool can never exceed
    ``max_bytes`` by more than one bundle transiently.
    """

    def __init__(
        self,
        directory: str,
        *,
        max_bytes: int = 16 * 1024 * 1024,
        max_bundles: int = 20,
    ) -> None:
        self.directory = directory
        self.max_bytes = max_bytes
        self.max_bundles = max_bundles
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)

    def _entries(self) -> list[tuple[str, int]]:
        """(path, size) for every bundle, oldest first (by filename —
        the embedded ms timestamp makes lexicographic == chronological)."""
        entries = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for name in names:
            if not (name.startswith("postmortem-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            try:
                entries.append((path, os.path.getsize(path)))
            except OSError:
                continue
        return entries

    def paths(self) -> list[str]:
        return [path for path, _ in self._entries()]

    def total_bytes(self) -> int:
        return sum(size for _, size in self._entries())

    def write(self, bundle: dict[str, Any]) -> str:
        """Persist one bundle and enforce the caps; returns its path."""
        stamp = int(bundle.get("created_unix", time.time()) * 1000)
        trigger = bundle.get("trigger", "unknown")
        with self._lock:
            path = os.path.join(
                self.directory, f"postmortem-{stamp}-{trigger}.json"
            )
            suffix = 0
            while os.path.exists(path):
                suffix += 1
                path = os.path.join(
                    self.directory,
                    f"postmortem-{stamp}-{trigger}.{suffix}.json",
                )
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, separators=(",", ":"), default=str)
            os.replace(tmp, path)
            self._enforce_caps()
        return path

    def _enforce_caps(self) -> None:
        entries = self._entries()
        total = sum(size for _, size in entries)
        # Delete oldest-first until both caps hold (but always keep the
        # newest bundle, even if it alone exceeds the byte cap).
        while entries and (
            len(entries) > self.max_bundles
            or (total > self.max_bytes and len(entries) > 1)
        ):
            path, size = entries.pop(0)
            try:
                os.remove(path)
            except OSError:
                pass
            total -= size


class TriggerEngine:
    """Decides when the recorder's contents become a bundle on disk.

    ``fire(trigger, reason, ...)`` applies, inline and under one lock:

    1. a per-trigger-kind **rate limit** (``min_interval`` seconds
       between bundles of the same kind — a crash-looping worker is one
       incident, not one bundle per restart);
    2. **dedup** on an optional ``key`` (e.g. ``("breaker_open",
       "pool")`` fires once until the breaker closes again and
       :meth:`reset_dedup` clears it).

    Accepted firings build the bundle on a one-shot daemon thread (the
    stack burst blocks ~100ms; pool-dispatcher and HTTP threads must
    not), unless ``sync=True`` (tests, CLI).
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        spool: BundleSpool,
        *,
        min_interval: float = 60.0,
        config: Any = None,
        stack_samples: int = 5,
        stack_interval: float = 0.02,
        settle_seconds: float = 0.5,
    ) -> None:
        self.recorder = recorder
        self.spool = spool
        self.min_interval = min_interval
        self.config = config
        self.stack_samples = stack_samples
        self.stack_interval = stack_interval
        self.settle_seconds = settle_seconds
        self._lock = threading.Lock()
        self._last_fired: dict[str, float] = {}
        self._seen_keys: set[tuple[str, str]] = set()
        self._counts = {
            kind: {"fired": 0, "rate_limited": 0, "deduped": 0}
            for kind in TRIGGER_KINDS
        }
        self._pending = 0
        #: paths written so far (newest last) — for tests and /debug.
        self.written: list[str] = []

    # -- policy ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "min_interval": self.min_interval,
                "counts": {
                    kind: dict(counters)
                    for kind, counters in self._counts.items()
                },
                "pending": self._pending,
                "written": len(self.written),
            }

    def reset_dedup(self, trigger: str, key: str) -> None:
        """Forget a dedup key (e.g. when a breaker closes again)."""
        with self._lock:
            self._seen_keys.discard((trigger, key))

    def fire(
        self,
        trigger: str,
        reason: str,
        *,
        context: dict[str, Any] | None = None,
        key: str | None = None,
        sync: bool = False,
    ) -> bool:
        """Request a bundle; True when one will be (or was) written."""
        if trigger not in TRIGGER_KINDS:
            raise ValueError(f"unknown trigger kind {trigger!r}")
        now = time.monotonic()
        with self._lock:
            counters = self._counts[trigger]
            if key is not None and (trigger, key) in self._seen_keys:
                counters["deduped"] += 1
                return False
            last = self._last_fired.get(trigger)
            if last is not None and now - last < self.min_interval:
                counters["rate_limited"] += 1
                return False
            # Mark inside the lock, before the (possibly async) build —
            # racing triggers of the same kind collapse to one bundle.
            self._last_fired[trigger] = now
            if key is not None:
                self._seen_keys.add((trigger, key))
            counters["fired"] += 1
            self._pending += 1

        if sync:
            self._build(trigger, reason, context)
        else:
            threading.Thread(
                target=self._build,
                args=(trigger, reason, context, self.settle_seconds),
                name=f"scwsc-postmortem-{trigger}",
                daemon=True,
            ).start()
        return True

    # -- mechanism ------------------------------------------------------

    def _build(
        self,
        trigger: str,
        reason: str,
        context: dict[str, Any] | None,
        settle: float = 0.0,
    ) -> None:
        try:
            # Let the incident's aftermath land in the rings first: a
            # worker_death fires mid-request, before the request's span
            # closes or its access record is written. A short settle
            # captures the requeue/fallback/completion too.
            if settle > 0:
                time.sleep(settle)
            bundle = build_bundle(
                self.recorder,
                trigger=trigger,
                reason=reason,
                context=context,
                config=self.config,
                trigger_stats=self.stats(),
                stack_samples=self.stack_samples,
                stack_interval=self.stack_interval,
            )
            path = self.spool.write(bundle)
            with self._lock:
                self.written.append(path)
        except Exception:  # noqa: BLE001 - a failed bundle must not cascade
            pass
        finally:
            with self._lock:
                self._pending -= 1

    def drain(self, timeout: float = 10.0) -> None:
        """Block until no builds are pending (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    return
            time.sleep(0.01)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    """``python -m repro.obs.postmortem BUNDLE.json [...]`` — validate."""
    import sys

    args = sys.argv[1:] if argv is None else argv
    if not args:
        print(
            "usage: python -m repro.obs.postmortem BUNDLE.json [...]",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in args:
        try:
            bundle = validate_bundle_file(path)
        except (OSError, ValidationError) as error:
            print(f"{path}: {error}", file=sys.stderr)
            status = 1
            continue
        print(f"{path}: ok (trigger={bundle['trigger']})")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
