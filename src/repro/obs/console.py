"""``scwsc top`` — a live terminal console over the daemon's ``/metrics``.

Stdlib only: :mod:`urllib.request` scrapes the Prometheus text
exposition, a small parser (the inverse of the escaping rules in
:mod:`repro.obs.metrics`) turns it into samples, and a renderer draws
fixed panels:

* **serve** — in-flight, queue depth, draining flag, QPS and non-2xx
  rate (deltas between consecutive scrapes);
* **latency** — p50/p90/p95/p99 estimated from the
  ``scwsc_server_request_seconds`` histogram buckets;
* **SLO** — per-scope multi-window burn rates from
  ``scwsc_slo_burn_rate`` (burn ≥ 1 means the error budget is being
  spent faster than the objective allows);
* **sheds** — ``scwsc_server_shed_total`` by reason;
* **breakers** — ``scwsc_breaker_state`` (closed/half-open/open);
* **workers** — ``scwsc_worker_peak_rss_bytes`` per worker.

Everything renders into a plain string, so tests (and ``--once``) can
produce one frame from a scraped snapshot without a TTY; the interactive
loop just redraws that string under an ANSI home+clear.
"""

from __future__ import annotations

import math
import time
import urllib.request
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Sample",
    "parse_exposition",
    "MetricsSnapshot",
    "histogram_quantile",
    "render_frame",
    "scrape",
    "run_top",
]


class Sample:
    """One exposition line: metric name, label dict, float value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict, value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


def _parse_labels(text: str) -> dict:
    """Parse ``key="value",...`` with Prometheus escape sequences.

    The writer escapes backslash, double-quote, and newline
    (:func:`repro.obs.metrics._escape_label_value`); this is the exact
    inverse, so a round trip through exposition is lossless.
    """
    labels: dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        eq = text.index("=", i)
        key = text[i:eq].strip()
        i = eq + 1
        if i >= n or text[i] != '"':
            raise ValueError(f"expected quoted label value in {text!r}")
        i += 1
        out: list[str] = []
        while i < n and text[i] != '"':
            ch = text[i]
            if ch == "\\" and i + 1 < n:
                nxt = text[i + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
                i += 2
            else:
                out.append(ch)
                i += 1
        if i >= n:
            raise ValueError(f"unterminated label value in {text!r}")
        labels[key] = "".join(out)
        i += 1  # closing quote
        while i < n and text[i] in ", ":
            i += 1
    return labels


def parse_exposition(text: str) -> list[Sample]:
    """Parse Prometheus text exposition into samples (HELP/TYPE skipped)."""
    samples: list[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # name{labels} value   |   name value
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = _parse_labels(label_text)
        else:
            name, value_text = line.split(None, 1)
            labels = {}
        try:
            value = float(value_text.strip())
        except ValueError:
            continue
        samples.append(Sample(name.strip(), labels, value))
    return samples


class MetricsSnapshot:
    """Queryable view over one scrape, with the scrape's wall-clock."""

    def __init__(self, samples: Iterable[Sample], ts: float | None = None):
        self.samples = list(samples)
        self.ts = time.monotonic() if ts is None else ts
        self._by_name: dict[str, list[Sample]] = {}
        for sample in self.samples:
            self._by_name.setdefault(sample.name, []).append(sample)

    @classmethod
    def parse(cls, text: str, ts: float | None = None) -> "MetricsSnapshot":
        return cls(parse_exposition(text), ts=ts)

    def get(self, name: str) -> list[Sample]:
        return self._by_name.get(name, [])

    def value(self, name: str, default: float | None = None, **labels):
        """First sample of ``name`` whose labels include ``labels``."""
        for sample in self.get(name):
            if all(sample.labels.get(k) == v for k, v in labels.items()):
                return sample.value
        return default

    def total(self, name: str, **labels) -> float:
        """Sum of ``name`` samples whose labels include ``labels``."""
        return sum(
            sample.value
            for sample in self.get(name)
            if all(sample.labels.get(k) == v for k, v in labels.items())
        )

    def group(self, name: str, key: str) -> dict[str, float]:
        """Sum of ``name`` samples keyed by one label's value."""
        out: dict[str, float] = {}
        for sample in self.get(name):
            if key in sample.labels:
                label = sample.labels[key]
                out[label] = out.get(label, 0.0) + sample.value
        return out

    def buckets(self, name: str, **labels) -> list[tuple[float, float]]:
        """Sorted, aggregated ``(le, cumulative_count)`` histogram pairs."""
        acc: dict[float, float] = {}
        for sample in self.get(f"{name}_bucket"):
            if not all(sample.labels.get(k) == v for k, v in labels.items()):
                continue
            le_text = sample.labels.get("le")
            if le_text is None:
                continue
            le = float("inf") if le_text == "+Inf" else float(le_text)
            acc[le] = acc.get(le, 0.0) + sample.value
        return sorted(acc.items())


def histogram_quantile(
    buckets: list[tuple[float, float]], q: float
) -> float | None:
    """Estimate a quantile from cumulative buckets, Prometheus-style
    (linear interpolation inside the bucket).

    Returns ``None`` — never NaN, never a division error — whenever the
    data cannot support an estimate: no buckets at all (a daemon that
    has not yet registered the histogram), zero observations (a fresh
    daemon before its first request), or non-finite counts (a mangled
    scrape)."""
    if not buckets:
        return None
    total = buckets[-1][1]
    if not math.isfinite(total) or total <= 0:
        return None
    if any(not math.isfinite(count) for _, count in buckets):
        return None
    rank = q * total
    prev_le, prev_count = 0.0, 0.0
    for le, count in buckets:
        if count >= rank:
            if le == float("inf"):
                # Open-ended top bucket: the lower bound is the honest
                # answer; anything else would be invented precision.
                return prev_le
            width = le - prev_le
            inside = count - prev_count
            if inside <= 0:
                return le
            return prev_le + width * (rank - prev_count) / inside
        prev_le, prev_count = le, count
    return buckets[-1][0]


# ---------------------------------------------------------------------------
# rendering


_BREAKER_NAMES = {0: "closed", 1: "half-open", 2: "OPEN"}


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "    -"
    if value < 1.0:
        return f"{value * 1000:4.0f}ms"
    return f"{value:5.2f}s"


def _fmt_bytes(value: float) -> str:
    if value >= 2**30:
        return f"{value / 2**30:.2f}GiB"
    if value >= 2**20:
        return f"{value / 2**20:.1f}MiB"
    return f"{value / 2**10:.0f}KiB"


def _rule(title: str, width: int) -> str:
    bar = "-" * max(0, width - len(title) - 4)
    return f"-- {title} {bar}"


def render_frame(
    snap: MetricsSnapshot,
    prev: MetricsSnapshot | None = None,
    width: int = 72,
) -> str:
    """One console frame as a plain string (no TTY required).

    ``prev`` (an earlier scrape) enables the rate panels; without it
    QPS shows ``-``.
    """
    lines: list[str] = []

    # -- serve panel -----------------------------------------------------
    inflight = snap.value("scwsc_server_inflight", 0.0)
    queue_depth = snap.value("scwsc_server_queue_depth", 0.0)
    draining = snap.value("scwsc_server_draining", 0.0)
    requests = snap.total("scwsc_server_requests_total")
    qps = errps = None
    if prev is not None and snap.ts > prev.ts:
        elapsed = snap.ts - prev.ts
        qps = max(0.0, requests - prev.total("scwsc_server_requests_total"))
        qps /= elapsed
        bad = sum(
            value
            for code, value in snap.group(
                "scwsc_server_requests_total", "code"
            ).items()
            if not code.startswith("2")
        )
        prev_bad = sum(
            value
            for code, value in prev.group(
                "scwsc_server_requests_total", "code"
            ).items()
            if not code.startswith("2")
        )
        errps = max(0.0, bad - prev_bad) / elapsed
    lines.append(_rule("serve", width))
    lines.append(
        f"inflight {inflight:4.0f}   queue {queue_depth:4.0f}   "
        f"qps {'-' if qps is None else f'{qps:6.1f}'}   "
        f"non-2xx/s {'-' if errps is None else f'{errps:6.1f}'}"
        + ("   DRAINING" if draining else "")
    )

    # -- latency panel ---------------------------------------------------
    buckets = snap.buckets("scwsc_server_request_seconds")
    lines.append(_rule("latency (all endpoints)", width))
    if buckets:
        quantiles = "  ".join(
            f"p{int(q * 100):<2} {_fmt_seconds(histogram_quantile(buckets, q))}"
            for q in (0.5, 0.9, 0.95, 0.99)
        )
        lines.append(f"{quantiles}   n={buckets[-1][1]:.0f}")
    else:
        lines.append("  (no samples)")

    # -- SLO panel -------------------------------------------------------
    burns = snap.get("scwsc_slo_burn_rate")
    lines.append(_rule("slo burn (x budget)", width))
    if burns:
        rows: dict[tuple[str, str], dict[str, float]] = {}
        for sample in burns:
            key = (
                sample.labels.get("scope", "?"),
                sample.labels.get("objective", "?"),
            )
            rows.setdefault(key, {})[sample.labels.get("window", "?")] = (
                sample.value
            )
        windows = sorted({w for row in rows.values() for w in row})
        for (scope, objective), row in sorted(rows.items()):
            cells = "  ".join(
                f"{window}={row.get(window, 0.0):7.2f}" for window in windows
            )
            flag = "  <-- burning" if any(v > 1.0 for v in row.values()) else ""
            lines.append(f"{scope:>12} {objective:<8} {cells}{flag}")
    else:
        lines.append("  (no slo samples)")

    # -- sheds panel -----------------------------------------------------
    sheds = snap.group("scwsc_server_shed_total", "reason")
    lines.append(_rule("sheds by reason", width))
    if sheds:
        lines.append(
            "  ".join(
                f"{reason}={count:.0f}"
                for reason, count in sorted(sheds.items())
            )
        )
    else:
        lines.append("  (none)")

    # -- breakers panel --------------------------------------------------
    breakers = snap.group("scwsc_breaker_state", "breaker")
    lines.append(_rule("breakers", width))
    if breakers:
        lines.append(
            "  ".join(
                f"{name}:{_BREAKER_NAMES.get(int(state), str(state))}"
                for name, state in sorted(breakers.items())
            )
        )
    else:
        lines.append("  (none reported)")

    # -- workers panel ---------------------------------------------------
    # Zero/negative values mean "not actually measured" (a platform
    # without the resource module reports nothing real), so they never
    # render as a misleading 0KiB.
    rss = {
        worker: value
        for worker, value in snap.group(
            "scwsc_worker_peak_rss_bytes", "worker"
        ).items()
        if value > 0
    }
    if rss:
        lines.append(_rule("worker peak rss", width))
        lines.append(
            "  ".join(
                f"w{worker}={_fmt_bytes(value)}"
                for worker, value in sorted(rss.items())
            )
        )
    elif _host_peak_rss() is not None:
        # RSS is measurable here but no worker has reported yet (fresh
        # daemon): keep the panel as a placeholder.
        lines.append(_rule("worker peak rss", width))
        lines.append("  (no worker rss yet)")
    # else: peak RSS is unknowable on this platform (no resource
    # module) — hide the panel rather than render fictitious 0 bytes.

    return "\n".join(lines)


def _host_peak_rss() -> int | None:
    """Whether this platform can measure peak RSS at all (None = no)."""
    try:
        from repro.obs.profile import peak_rss_bytes
    except ImportError:  # pragma: no cover - profile is stdlib-only
        return None
    return peak_rss_bytes()


# ---------------------------------------------------------------------------
# scraping / main loop


def scrape(url: str, timeout: float = 5.0) -> MetricsSnapshot:
    """Fetch and parse one ``/metrics`` page."""
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8", "replace")
    return MetricsSnapshot.parse(text)


def frames(
    url: str, interval: float, timeout: float = 5.0
) -> Iterator[str]:
    """Yield rendered frames forever (one scrape per frame)."""
    prev: MetricsSnapshot | None = None
    while True:
        snap = scrape(url, timeout=timeout)
        yield render_frame(snap, prev)
        prev = snap
        time.sleep(interval)


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    out=None,
) -> int:
    """Entry point for ``scwsc top``; returns a process exit code."""
    import sys

    out = out or sys.stdout
    if once:
        print(render_frame(scrape(url)), file=out)
        return 0
    try:
        for frame in frames(url, interval):
            # Home + clear-to-end redraw: cheap, flicker-free, and any
            # non-ANSI terminal still gets readable scrolling frames.
            print("\x1b[H\x1b[2J" + frame, file=out, flush=True)
    except KeyboardInterrupt:
        print("", file=out)
    except OSError as error:
        print(f"scrape failed: {error}", file=sys.stderr)
        return 1
    return 0
