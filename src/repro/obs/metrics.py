"""Metrics registry: counters, gauges, histograms; Prometheus exposition.

The solver-local :class:`repro.core.result.Metrics` dataclass stays the
per-run record (cheap attribute increments on the hot path, shipped in
results and IPC frames); this registry is the *process-level* aggregate
built on the same field schema (:data:`repro.core.result.METRIC_FIELDS`).
:func:`record_cover_result` publishes a finished run's counters into the
registry, so a long-lived process (the pool supervisor, a batch run)
accumulates totals across all solves, exportable as a Prometheus text
page (:meth:`MetricsRegistry.exposition`) or a JSON snapshot
(:meth:`MetricsRegistry.snapshot`, also written as the closing
``metrics`` record of a trace file).

No third-party client library: the exposition format is a few lines of
text (`# HELP` / `# TYPE` / samples), and writing it directly keeps the
package dependency-free per the repo rule.
"""

from __future__ import annotations

import os
import platform
import threading
from typing import Any, Iterable, Mapping

from repro.core.result import METRIC_FIELDS, CoverResult

#: Seconds-oriented histogram buckets spanning sub-millisecond selections
#: to minute-scale full-dataset solves. Fixed (not configurable per call)
#: so snapshots from different runs are always mergeable bucket-by-bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
)

LabelValues = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any] | None) -> LabelValues:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline.

    Order matters — backslashes first, or the escapes themselves would
    be re-escaped.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """``# HELP`` line escaping: backslash and newline only (no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelValues) -> str:
    if not key:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._values: dict[LabelValues, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = sorted(self._values.items())
        return {
            "kind": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in items
            ],
        }

    def samples(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield f"{self.name}{_format_labels(key)} {value:g}"


class Gauge(Counter):
    """A value that can go up and down (pool depth, live workers)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)


class Histogram:
    """Fixed-boundary cumulative histogram, per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError(f"histogram {name}: buckets must be sorted, non-empty")
        self.name = name
        self.help = help_text
        self.buckets = tuple(float(b) for b in buckets)
        # per label set: (bucket counts incl. +Inf, sum, count)
        self._values: dict[LabelValues, tuple[list[int], float, int]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            counts, total, n = self._values.get(
                key, ([0] * (len(self.buckets) + 1), 0.0, 0)
            )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._values[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        entry = self._values.get(_label_key(labels))
        return entry[2] if entry else 0

    def sum(self, **labels: Any) -> float:
        entry = self._values.get(_label_key(labels))
        return entry[1] if entry else 0.0

    def _consistent_items(self) -> list[tuple[LabelValues, tuple[list[int], float, int]]]:
        """Copy every label set's (counts, sum, count) under the lock.

        ``observe`` mutates the bucket-count list in place, so reading
        it lock-free could see a bucket increment without its matching
        ``count`` increment (or vice versa) and emit an exposition where
        ``_count`` disagrees with the cumulative ``+Inf`` bucket. The
        copy pins one consistent view per scrape.
        """
        with self._lock:
            return [
                (key, (list(counts), total, n))
                for key, (counts, total, n) in sorted(self._values.items())
            ]

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": dict(key),
                    "counts": counts,
                    "sum": total,
                    "count": n,
                }
                for key, (counts, total, n) in self._consistent_items()
            ],
        }

    def samples(self) -> Iterable[str]:
        for key, (counts, total, n) in self._consistent_items():
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                le_key = key + (("le", f"{bound:g}"),)
                yield f"{self.name}_bucket{_format_labels(le_key)} {cumulative}"
            cumulative += counts[-1]
            # The +Inf bucket is emitted unconditionally (even when every
            # observation landed in a finite bucket): Prometheus clients
            # require it and it must equal _count.
            inf_key = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket{_format_labels(inf_key)} {cumulative}"
            yield f"{self.name}_sum{_format_labels(key)} {total:g}"
            yield f"{self.name}_count{_format_labels(key)} {n}"


class MetricsRegistry:
    """Named counters/gauges/histograms; create-or-get by name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls: type, name: str, help_text: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric, for trace files and
        ``scwsc trace summarize``."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}

    def exposition(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            metrics = dict(self._metrics)
        for name, metric in sorted(metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (tests may :meth:`~MetricsRegistry.reset`)."""
    return _REGISTRY


def publish_build_info(registry: MetricsRegistry | None = None) -> None:
    """Publish the ``scwsc_build_info`` identity gauge.

    The Prometheus build-info idiom: a gauge whose value is always 1 and
    whose labels identify the scraped instance — package version, python
    runtime, and the configured marginal-tracker backend — so a fleet
    operator can tell which build served which metrics. Called at CLI
    startup and by ``scwsc serve``; idempotent.
    """
    from repro import __version__
    from repro.core.marginal import BACKEND_ENV_VAR

    registry = registry or _REGISTRY
    backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or "auto"
    registry.gauge(
        "scwsc_build_info",
        "Build/runtime identity of this process (value is always 1)",
    ).set(
        1,
        version=__version__,
        python=platform.python_version(),
        backend=backend,
    )


def record_cover_result(
    result: CoverResult,
    registry: MetricsRegistry | None = None,
    lp_bound: float | None = None,
) -> None:
    """Publish one finished solve into the registry.

    Increments ``scwsc_solves_total{algorithm=...}``, a per-field counter
    for every :data:`METRIC_FIELDS` work counter, and observes the run
    time in ``scwsc_solve_runtime_seconds``. Also records the solve's
    quality telemetry (:mod:`repro.obs.quality`): coverage slack and
    solution size always, the approximation-ratio histogram when the
    caller supplies an ``lp_bound``.

    Callers publish a result exactly once, on the accepted answer — pool
    retries ship their trace records per attempt, but only the attempt
    the supervisor accepted reaches this function (asserted by
    ``tests/resilience/test_metrics_once.py``).
    """
    registry = registry or _REGISTRY
    algorithm = result.algorithm
    registry.counter(
        "scwsc_solves_total", "Completed solver runs"
    ).inc(algorithm=algorithm)
    for name, _, _ in METRIC_FIELDS:
        if name == "runtime_seconds":
            continue
        registry.counter(
            f"scwsc_{name}_total",
            f"Sum of Metrics.{name} across runs",
        ).inc(getattr(result.metrics, name), algorithm=algorithm)
    registry.histogram(
        "scwsc_solve_runtime_seconds", "Per-run wall time"
    ).observe(result.metrics.runtime_seconds, algorithm=algorithm)
    # Imported here: repro.obs.quality builds on this module's registry.
    from repro.obs.quality import record_quality

    record_quality(result, lp_bound=lp_bound, registry=registry)
