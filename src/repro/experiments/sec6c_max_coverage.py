"""Section VI-C: the partial maximum coverage heuristic ignores cost.

The paper reports that greedy partial max coverage (pick the k highest
marginal-benefit patterns, stop at the coverage target) returns the same
expensive solution regardless of the coverage fraction — about an order of
magnitude costlier than CWSC at low coverage.
"""

from __future__ import annotations

from repro.baselines.max_coverage import max_coverage
from repro.core.cwsc import cwsc
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 12_000,
        "seed": 7,
        "k": 10,
        "s_values": (0.3, 0.4, 0.5, 0.6),
    },
    "small": {
        "n_rows": 400,
        "seed": 7,
        "k": 5,
        "s_values": (0.3, 0.5),
    },
}


@experiment("sec6c", "Partial max coverage cost blow-up (Section VI-C)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    table = master_trace(config["n_rows"], config["seed"])
    system = build_set_system(table, "max")
    mc_costs = {}
    cwsc_costs = {}
    ratios = {}
    for s_hat in config["s_values"]:
        mc = max_coverage(system, config["k"], s_hat)
        ours = cwsc(system, config["k"], s_hat, on_infeasible="full_cover")
        mc_costs[s_hat] = mc.total_cost
        cwsc_costs[s_hat] = ours.total_cost
        ratios[s_hat] = (
            mc.total_cost / ours.total_cost if ours.total_cost else float("inf")
        )
    headers = ["", *[f"s = {s:g}" for s in config["s_values"]]]
    rows = [
        ["max coverage cost", *[mc_costs[s] for s in config["s_values"]]],
        ["CWSC cost", *[cwsc_costs[s] for s in config["s_values"]]],
        ["ratio", *[ratios[s] for s in config["s_values"]]],
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Section VI-C — greedy partial max coverage vs. CWSC "
            f"(n={config['n_rows']}, k={config['k']})"
        ),
    )
    return ExperimentReport(
        experiment_id="sec6c",
        title="Max coverage ignores cost",
        text=text,
        data={
            "max_coverage": mc_costs,
            "cwsc": cwsc_costs,
            "ratios": ratios,
            "config": config,
        },
    )
