"""Table IV: solution quality (total cost) of CWSC vs. CMC.

Expected shape: CWSC's costs are competitive with — and at the highest
coverage fraction lower than — every CMC configuration, and increasing
``b`` tends to increase CMC's cost (a coarser budget guess overshoots the
optimal budget by more).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.quality_grid import grid_results
from repro.experiments.reporting import format_table


@experiment("table4", "Solution cost: CWSC vs. CMC(b, eps) (Table IV)")
def run(scale: Scale = "full") -> ExperimentReport:
    grid = grid_results(scale)
    config = grid["config"]
    s_values = config["s_values"]
    headers = ["Algorithm", *[f"s = {s:g}" for s in s_values]]
    rows = [
        [label, *[results[s].total_cost for s in s_values]]
        for label, results in grid["rows"].items()
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Table IV — total solution cost "
            f"(n={config['n_rows']}, k={config['k']})"
        ),
    )
    return ExperimentReport(
        experiment_id="table4",
        title="Solution quality comparison of CMC and CWSC",
        text=text,
        data={
            "costs": {
                label: {s: results[s].total_cost for s in s_values}
                for label, results in grid["rows"].items()
            },
            "config": config,
        },
    )
