"""Experiment harness: one module per paper table/figure (see DESIGN.md).

Run from the command line::

    python -m repro list
    python -m repro run fig5 --scale full

or programmatically::

    from repro.experiments import run_experiment
    report = run_experiment("table4", scale="small")
    print(report.text)
"""

from repro.experiments.base import (
    CheckpointStore,
    ExperimentReport,
    active_checkpoint,
    available_experiments,
    checkpointing,
    run_experiment,
)
from repro.experiments.reporting import format_series_table, format_table

__all__ = [
    "CheckpointStore",
    "ExperimentReport",
    "active_checkpoint",
    "available_experiments",
    "checkpointing",
    "format_series_table",
    "format_table",
    "run_experiment",
]
