"""Extension experiment: stability across data draws.

The paper evaluates on one trace; a reproduction on synthetic data should
show that its conclusions do not hinge on one lucky seed. This experiment
regenerates the trace under several seeds and reports the spread of CWSC
and CMC costs and of their ratio.
"""

from __future__ import annotations

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.datasets.lbl import lbl_trace
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 6_000,
        "seeds": (7, 17, 27, 37, 47),
        "k": 10,
        "s_hat": 0.5,
    },
    "small": {
        "n_rows": 300,
        "seeds": (7, 17),
        "k": 5,
        "s_hat": 0.4,
    },
}


@experiment("ext-seeds", "Cost stability across data seeds")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = []
    records = []
    for seed in config["seeds"]:
        table = lbl_trace(config["n_rows"], seed=seed)
        system = build_set_system(table, "max")
        ours = cwsc(
            system, config["k"], config["s_hat"], on_infeasible="full_cover"
        )
        other = cmc_epsilon(
            system, config["k"], config["s_hat"], b=1.0, eps=1.0
        )
        ratio = (
            ours.total_cost / other.total_cost
            if other.total_cost
            else float("inf")
        )
        records.append(
            {
                "seed": seed,
                "cwsc": ours.total_cost,
                "cmc": other.total_cost,
                "ratio": ratio,
            }
        )
        rows.append(
            [seed, ours.total_cost, ours.n_sets, other.total_cost,
             other.n_sets, ratio]
        )
    ratios = [record["ratio"] for record in records]
    headers = ["seed", "CWSC cost", "sets", "CMC cost", "sets", "ratio"]
    text = format_table(
        headers,
        rows,
        title=(
            "Extension — cost stability across seeds "
            f"(n={config['n_rows']}, k={config['k']}, s={config['s_hat']})"
        ),
    )
    text += (
        f"\nCWSC/CMC cost ratio: min={min(ratios):.2f} "
        f"max={max(ratios):.2f}"
    )
    return ExperimentReport(
        experiment_id="ext-seeds",
        title="Cost stability across data seeds",
        text=text,
        data={"records": records, "config": config},
    )
