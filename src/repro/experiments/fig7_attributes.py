"""Figure 7: running time vs. number of pattern attributes.

Paper setup: remove one pattern attribute at a time from LBL at a fixed
data size. Expected shape: runtimes grow with the attribute count (the
pattern space is exponential in ``j``), with the optimized algorithms
increasingly ahead as ``j`` grows.
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_chart
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_series_table
from repro.experiments.sweeps import ALGORITHMS, attribute_sweep

CONFIG = {
    "full": {
        "attribute_counts": (1, 2, 3, 4, 5),
        "n_rows": 12_000,
        "seed": 7,
        "k": 10,
        "s_hat": 0.3,
    },
    "small": {
        "attribute_counts": (1, 3, 5),
        "n_rows": 400,
        "seed": 7,
        "k": 4,
        "s_hat": 0.3,
    },
}


@experiment("fig7", "Running time vs. number of attributes (Fig. 7)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = attribute_sweep(
        config["attribute_counts"],
        config["n_rows"],
        config["seed"],
        config["k"],
        config["s_hat"],
    )
    series = {
        name: [row[name]["runtime"] for row in rows] for name in ALGORITHMS
    }
    x_values = [row["x"] for row in rows]
    text = format_series_table(
        "attributes",
        x_values,
        series,
        title=(
            "Fig. 7 — running time (seconds) vs. number of attributes "
            f"(n={config['n_rows']}, k={config['k']}, s={config['s_hat']})"
        ),
    )
    text += "\n\n" + render_chart(
        x_values, series, y_label="seconds", x_label="attributes"
    )
    return ExperimentReport(
        experiment_id="fig7",
        title="Running time vs. number of attributes",
        text=text,
        data={"rows": rows, "config": config},
    )
