"""Section VI-B (second half): quality robustness on perturbed weights.

The paper builds two synthetic groups from LBL — uniform ``+-delta``
measure noise and log-normal re-ranked measures — and reports that CWSC
"continued to return solutions whose total costs were no greater than
those of CMC with various values of b and eps".
"""

from __future__ import annotations

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.datasets.perturb import lognormal_rerank, uniform_perturb
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 6_000,
        "seed": 7,
        "k": 10,
        "s_hat": 0.6,
        "deltas": (0.25, 0.5, 1.0),
        "sigmas": (1.0, 2.0, 4.0),
        "cmc_configs": ((1.0, 1.0), (2.0, 2.0)),
    },
    "small": {
        "n_rows": 400,
        "seed": 7,
        "k": 5,
        "s_hat": 0.5,
        "deltas": (0.5,),
        "sigmas": (2.0,),
        "cmc_configs": ((1.0, 1.0),),
    },
}


@experiment("sec6b", "Quality robustness on perturbed weights (Section VI-B)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    base = master_trace(config["n_rows"], config["seed"])
    variants = [
        (f"uniform delta={delta:g}", uniform_perturb(base, delta, seed=11))
        for delta in config["deltas"]
    ] + [
        (
            f"lognormal sigma={sigma:g}",
            lognormal_rerank(base, sigma, seed=13),
        )
        for sigma in config["sigmas"]
    ]
    rows = []
    records = []
    for label, table in variants:
        system = build_set_system(table, "max")
        ours = cwsc(
            system, config["k"], config["s_hat"], on_infeasible="full_cover"
        )
        cmc_costs = []
        for b, eps in config["cmc_configs"]:
            cmc_costs.append(
                cmc_epsilon(
                    system, config["k"], config["s_hat"], b=b, eps=eps
                ).total_cost
            )
        records.append(
            {
                "variant": label,
                "cwsc": ours.total_cost,
                "cmc": dict(zip(config["cmc_configs"], cmc_costs)),
            }
        )
        rows.append([label, ours.total_cost, *cmc_costs])
    headers = [
        "variant",
        "CWSC",
        *[f"CMC (b={b:g}, eps={eps:g})" for b, eps in config["cmc_configs"]],
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Section VI-B — solution cost on perturbed measures "
            f"(n={config['n_rows']}, k={config['k']}, s={config['s_hat']})"
        ),
    )
    return ExperimentReport(
        experiment_id="sec6b",
        title="Robustness to weight perturbations",
        text=text,
        data={"records": records, "config": config},
    )
