"""Figure 8: running time vs. the maximum number of patterns ``k``.

Expected shape (per the paper): CWSC's runtime *increases* with ``k``
(more threshold iterations), while CMC's *decreases* (a larger ``k``
makes cheap feasible solutions appear at smaller budgets, so fewer budget
rounds are tried).
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_chart
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_series_table
from repro.experiments.sweeps import ALGORITHMS, k_sweep

CONFIG = {
    "full": {
        "k_values": (2, 5, 10, 15, 20, 25),
        "n_rows": 12_000,
        "seed": 7,
        "s_hat": 0.3,
    },
    "small": {
        "k_values": (2, 4, 6),
        "n_rows": 400,
        "seed": 7,
        "s_hat": 0.3,
    },
}


@experiment("fig8", "Running time vs. maximum number of patterns k (Fig. 8)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = k_sweep(
        config["k_values"],
        config["n_rows"],
        config["seed"],
        config["s_hat"],
    )
    series = {
        name: [row[name]["runtime"] for row in rows] for name in ALGORITHMS
    }
    x_values = [row["x"] for row in rows]
    text = format_series_table(
        "k",
        x_values,
        series,
        title=(
            "Fig. 8 — running time (seconds) vs. k "
            f"(n={config['n_rows']}, s={config['s_hat']}, b=1, eps=1)"
        ),
    )
    text += "\n\n" + render_chart(
        x_values, series, y_label="seconds", x_label="k"
    )
    return ExperimentReport(
        experiment_id="fig8",
        title="Running time vs. k",
        text=text,
        data={"rows": rows, "config": config},
    )
