"""Shared CWSC-vs-CMC grid behind Tables IV and V.

One run of CWSC and one of CMC per ``(b, eps)`` configuration for each
coverage fraction, on the fully enumerated pattern system (the algorithms
exactly as defined in Figs. 1-2, parameterized by ``b`` and ``eps``).
Table IV reads the costs, Table V the runtimes; results are memoized so
producing both tables costs one grid.
"""

from __future__ import annotations

import time

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.result import result_from_dict
from repro.experiments.base import active_checkpoint
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 12_000,
        "seed": 7,
        "k": 10,
        "s_values": (0.3, 0.4, 0.5, 0.6),
        "cmc_configs": (
            (0.5, 1.0), (0.5, 2.0), (1.0, 1.0),
            (1.0, 2.0), (2.0, 1.0), (2.0, 2.0),
        ),
    },
    "small": {
        "n_rows": 400,
        "seed": 7,
        "k": 5,
        "s_values": (0.3, 0.5),
        "cmc_configs": ((1.0, 1.0), (2.0, 2.0)),
    },
}

_grid_cache: dict[tuple, dict] = {}


def grid_results(scale: str) -> dict:
    """``{"build_seconds": .., "rows": {label: {s: result}}}`` memoized.

    ``label`` is ``"CWSC"`` or ``"CMC (b=.., eps=..)"``; each result is a
    :class:`~repro.core.result.CoverResult`.

    When a checkpoint store is active (``scwsc run --resume``), every
    ``(algorithm, s)`` cell is snapshotted to it as soon as it finishes,
    and cells already present are loaded instead of recomputed. The
    in-process memo is bypassed in that case so the store stays the
    source of truth.
    """
    store = active_checkpoint()
    if store is None and scale in _grid_cache:
        return _grid_cache[scale]
    config = CONFIG[scale]
    table = master_trace(config["n_rows"], config["seed"])
    build_start = time.perf_counter()
    system = build_set_system(table, "max")
    build_seconds = time.perf_counter() - build_start

    def cell(label: str, s_hat: float, compute):
        if store is None:
            return compute()
        return store.cell(
            f"{scale}|{label}|s={s_hat:g}",
            compute,
            serialize=lambda result: result.to_dict(),
            deserialize=result_from_dict,
        )

    rows: dict[str, dict[float, object]] = {"CWSC": {}}
    for s_hat in config["s_values"]:
        rows["CWSC"][s_hat] = cell(
            "CWSC",
            s_hat,
            lambda s=s_hat: cwsc(
                system, config["k"], s, on_infeasible="full_cover"
            ),
        )
    for b, eps in config["cmc_configs"]:
        label = f"CMC (b={b:g}, eps={eps:g})"
        rows[label] = {}
        for s_hat in config["s_values"]:
            rows[label][s_hat] = cell(
                label,
                s_hat,
                lambda s=s_hat, b=b, eps=eps: cmc_epsilon(
                    system, config["k"], s, b=b, eps=eps
                ),
            )
    result = {
        "build_seconds": build_seconds,
        "rows": rows,
        "config": config,
    }
    if store is None:
        _grid_cache[scale] = result
    return result
