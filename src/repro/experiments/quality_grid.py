"""Shared CWSC-vs-CMC grid behind Tables IV and V.

One run of CWSC and one of CMC per ``(b, eps)`` configuration for each
coverage fraction, on the fully enumerated pattern system (the algorithms
exactly as defined in Figs. 1-2, parameterized by ``b`` and ``eps``).
Table IV reads the costs, Table V the runtimes; results are memoized so
producing both tables costs one grid.

The grid supports both resilience features of the harness: with a
checkpoint store active every cell is snapshotted as it finishes
(``scwsc run --resume``), and with a worker count installed the cells
execute on the supervised process pool (``scwsc run --workers N``) —
each cell as a direct solver request, so pool cells are the same
deterministic values the sequential path computes.
"""

from __future__ import annotations

import time

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.result import result_from_dict
from repro.experiments.base import (
    active_checkpoint,
    fan_out_cells,
    worker_count,
)
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 12_000,
        "seed": 7,
        "k": 10,
        "s_values": (0.3, 0.4, 0.5, 0.6),
        "cmc_configs": (
            (0.5, 1.0), (0.5, 2.0), (1.0, 1.0),
            (1.0, 2.0), (2.0, 1.0), (2.0, 2.0),
        ),
    },
    "small": {
        "n_rows": 400,
        "seed": 7,
        "k": 5,
        "s_values": (0.3, 0.5),
        "cmc_configs": ((1.0, 1.0), (2.0, 2.0)),
    },
}

_grid_cache: dict[tuple, dict] = {}


def _cell_specs(config: dict) -> list[tuple[str, float, str, dict]]:
    """Every grid cell as ``(row label, s_hat, solver name, options)``."""
    specs = [
        ("CWSC", s_hat, "cwsc", {"on_infeasible": "full_cover"})
        for s_hat in config["s_values"]
    ]
    for b, eps in config["cmc_configs"]:
        label = f"CMC (b={b:g}, eps={eps:g})"
        specs.extend(
            (label, s_hat, "cmc_epsilon", {"b": b, "eps": eps})
            for s_hat in config["s_values"]
        )
    return specs


def grid_results(scale: str) -> dict:
    """``{"build_seconds": .., "rows": {label: {s: result}}}`` memoized.

    ``label`` is ``"CWSC"`` or ``"CMC (b=.., eps=..)"``; each result is a
    :class:`~repro.core.result.CoverResult`.

    When a checkpoint store is active (``scwsc run --resume``), every
    ``(algorithm, s)`` cell is snapshotted to it as soon as it finishes,
    and cells already present are loaded instead of recomputed. The
    in-process memo is bypassed in that case so the store stays the
    source of truth — likewise under a worker pool, whose cells should
    always reflect this run.
    """
    store = active_checkpoint()
    workers = worker_count()
    if store is None and workers == 0 and scale in _grid_cache:
        return _grid_cache[scale]
    config = CONFIG[scale]
    table = master_trace(config["n_rows"], config["seed"])
    build_start = time.perf_counter()
    system = build_set_system(table, "max")
    build_seconds = time.perf_counter() - build_start

    specs = _cell_specs(config)

    def cell_key(label: str, s_hat: float) -> str:
        return f"{scale}|{label}|s={s_hat:g}"

    if workers > 0:
        from repro.resilience.pool import SolveRequest

        computed = fan_out_cells(
            [
                (
                    cell_key(label, s_hat),
                    SolveRequest(
                        system=system,
                        k=config["k"],
                        s_hat=s_hat,
                        solver=solver,
                        options=dict(options),
                    ),
                )
                for label, s_hat, solver, options in specs
            ],
            serialize=lambda result: result.to_dict(),
            deserialize=result_from_dict,
        )
        rows: dict[str, dict[float, object]] = {}
        for label, s_hat, _, _ in specs:
            rows.setdefault(label, {})[s_hat] = computed[
                cell_key(label, s_hat)
            ]
    else:
        solvers = {"cwsc": cwsc, "cmc_epsilon": cmc_epsilon}

        def cell(label: str, s_hat: float, compute):
            if store is None:
                return compute()
            return store.cell(
                cell_key(label, s_hat),
                compute,
                serialize=lambda result: result.to_dict(),
                deserialize=result_from_dict,
            )

        rows = {}
        for label, s_hat, solver, options in specs:
            rows.setdefault(label, {})[s_hat] = cell(
                label,
                s_hat,
                lambda s=s_hat, fn=solvers[solver], opts=options: fn(
                    system, config["k"], s, **opts
                ),
            )
    result = {
        "build_seconds": build_seconds,
        "rows": rows,
        "config": config,
    }
    if store is None and workers == 0:
        _grid_cache[scale] = result
    return result
