"""Tables I and II plus the worked examples of Sections I, V-A and V-B.

Replays the paper's 16-entity running example end to end:

* Table II — all 24 patterns with their max-costs and benefits;
* the partial weighted set cover solution (7 patterns, cost 24);
* the optimal k=2 solution (P6 + P16, cost 27);
* the CWSC walkthrough (P16 then P3);
* the CMC walkthrough (budgets 5 -> 10 -> 20, coverage 9).
"""

from __future__ import annotations

import math

from repro.baselines.weighted_set_cover import weighted_set_cover
from repro.core.cmc import cmc
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.datasets.entities import entities_table
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.patterns.pattern import Pattern
from repro.patterns.pattern_sets import build_set_system

#: The paper's coverage requirement: 9 of the 16 entities.
S_HAT = 9 / 16
K = 2


@experiment("running-example", "Tables I/II and the worked examples")
def run(scale: Scale = "full") -> ExperimentReport:
    table = entities_table()
    system = build_set_system(table, "max")

    pattern_rows = [
        [
            ws.label.format(table.attributes),
            ws.cost,
            ws.size,
        ]
        for ws in sorted(
            system.sets, key=lambda ws: (-ws.size, ws.cost, ws.set_id)
        )
    ]
    sections = [
        format_table(
            ["Pattern", "Cost", "Benefit"],
            pattern_rows,
            title=f"Table II — all {system.n_sets} patterns",
        )
    ]

    wsc = weighted_set_cover(system, S_HAT)
    sections.append(
        f"Partial weighted set cover (s=9/16): {wsc.n_sets} patterns, "
        f"cost {wsc.total_cost:g} (paper: 7 patterns, cost 24)"
    )

    opt = solve_exact(system, K, S_HAT)
    sections.append(
        f"Optimal (k=2, s=9/16): cost {opt.total_cost:g} via "
        + " + ".join(p.format(table.attributes) for p in opt.labels)
        + " (paper: P6 + P16, cost 27)"
    )

    ours_cwsc = cwsc(system, K, S_HAT)
    sections.append(
        f"CWSC (k=2, s=9/16): cost {ours_cwsc.total_cost:g} via "
        + " -> ".join(p.format(table.attributes) for p in ours_cwsc.labels)
        + " (paper: P16 then P3)"
    )

    # The CMC walkthrough fixes the *discounted* target at 9 records, so
    # feed it the s_hat whose (1 - 1/e) fraction is 9/16.
    cmc_s_hat = S_HAT / (1.0 - 1.0 / math.e)
    ours_cmc = cmc(system, K, cmc_s_hat, b=1.0)
    sections.append(
        f"CMC (k=2, target 9 records, b=1): cost {ours_cmc.total_cost:g}, "
        f"covered {ours_cmc.covered}, budget rounds "
        f"{ours_cmc.metrics.budget_rounds} via "
        + " -> ".join(p.format(table.attributes) for p in ours_cmc.labels)
        + " (paper: budgets 5, 10, 20; coverage 9)"
    )

    return ExperimentReport(
        experiment_id="running-example",
        title="The paper's running example",
        text="\n\n".join(sections),
        data={
            "n_patterns": system.n_sets,
            "wsc": {"n_sets": wsc.n_sets, "cost": wsc.total_cost},
            "optimal_cost": opt.total_cost,
            "cwsc_cost": ours_cwsc.total_cost,
            "cwsc_patterns": [p.values for p in ours_cwsc.labels],
            "cmc_covered": ours_cmc.covered,
            "cmc_rounds": ours_cmc.metrics.budget_rounds,
        },
    )
