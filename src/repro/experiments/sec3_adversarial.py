"""Section III: truncated budgeted max coverage fails on our problem.

The analytical example: ``ck`` singletons of weight 1 vs. ``k`` blocks of
``C`` elements and weight ``C + 1`` each, with ``c << C``. Greedy budgeted
max coverage (by marginal gain) prefers the singletons, so allowed ``ck``
picks it covers only ``ck`` of ``Ck`` elements, while the optimum (the
``k`` blocks) covers everything. CWSC, by contrast, solves the instance
exactly: its per-pick benefit threshold forces the blocks.
"""

from __future__ import annotations

from repro.baselines.budgeted_max_coverage import budgeted_max_coverage
from repro.core.cwsc import cwsc
from repro.datasets.adversarial import (
    bmc_adversarial_system,
    bmc_optimal_budget,
)
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table

CONFIG = {
    "full": {"k": 10, "c": 3, "big_c": 50},
    "small": {"k": 3, "c": 2, "big_c": 10},
}


@experiment("sec3", "Budgeted max coverage adversarial instance (Section III)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    k, c, big_c = config["k"], config["c"], config["big_c"]
    system = bmc_adversarial_system(k, c, big_c)
    budget = bmc_optimal_budget(k, big_c)
    bmc = budgeted_max_coverage(system, budget=budget, max_sets=c * k)
    ours = cwsc(system, k=k, s_hat=1.0)
    headers = ["approach", "sets", "covered", f"of n={system.n_elements}", "cost"]
    rows = [
        [
            f"greedy BMC ({c}k sets allowed)",
            bmc.n_sets,
            bmc.covered,
            f"{bmc.coverage_fraction:.1%}",
            bmc.total_cost,
        ],
        [
            "CWSC (k sets)",
            ours.n_sets,
            ours.covered,
            f"{ours.coverage_fraction:.1%}",
            ours.total_cost,
        ],
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Section III — adversarial instance "
            f"(k={k}, c={c}, C={big_c}, budget={budget:g})"
        ),
    )
    return ExperimentReport(
        experiment_id="sec3",
        title="Greedy budgeted max coverage has arbitrarily poor coverage",
        text=text,
        data={
            "bmc_covered": bmc.covered,
            "bmc_sets": bmc.n_sets,
            "cwsc_covered": ours.covered,
            "n_elements": system.n_elements,
            "config": config,
        },
    )
