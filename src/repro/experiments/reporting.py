"""Plain-text rendering for experiment reports.

The paper's artifacts are tables and line plots; a terminal reproduction
renders both as monospace tables (one row per x-value, one column per
series), which is what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Render a figure as a table: x down the rows, one series per column."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
