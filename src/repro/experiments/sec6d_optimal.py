"""Section VI-D: comparison to an optimal solution.

On small samples (where exhaustive search is feasible) the paper found
that CMC with small ``b`` and ``eps`` matches the optimum and CWSC almost
always does. We reproduce with the branch-and-bound exact solver and also
report the LP-relaxation lower bound as a sanity envelope.
"""

from __future__ import annotations

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.core.lp_bound import lp_lower_bound
from repro.core.preprocess import remove_dominated
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 60,
        "master_rows": 12_000,
        # protocol + endstate + flags: the attributes that carry the
        # duration structure, so small samples behave like the full
        # trace (hosts are near-unique at n=60 and only inflate the
        # exhaustive search).
        "attributes": ("protocol", "endstate", "flags"),
        "seed": 7,
        "k": 5,
        "s_values": (0.3, 0.5),
        "samples": 3,
    },
    "small": {
        "n_rows": 30,
        "master_rows": 400,
        "attributes": ("protocol", "endstate", "flags"),
        "seed": 7,
        "k": 3,
        "s_values": (0.4,),
        "samples": 2,
    },
}


@experiment("sec6d", "Comparison to the optimal solution (Section VI-D)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    master = master_trace(config["master_rows"], config["seed"]).project(
        config["attributes"]
    )
    rows = []
    records = []
    for sample_id in range(config["samples"]):
        table = master.sample(config["n_rows"], seed=config["seed"] + sample_id)
        system = build_set_system(table, "max")
        # Dominance preprocessing preserves the optimum and keeps the
        # exhaustive search tractable (see repro.core.preprocess).
        reduced = remove_dominated(system)
        for s_hat in config["s_values"]:
            opt = solve_exact(reduced, config["k"], s_hat)
            lp = lp_lower_bound(reduced, config["k"], s_hat)
            ours_cwsc = cwsc(
                system, config["k"], s_hat, on_infeasible="full_cover"
            )
            ours_cmc = cmc_epsilon(
                system, config["k"], s_hat, b=0.2, eps=1.0
            )
            record = {
                "sample": sample_id,
                "s": s_hat,
                "lp_bound": lp,
                "optimal": opt.total_cost,
                "cwsc": ours_cwsc.total_cost,
                "cmc": ours_cmc.total_cost,
            }
            records.append(record)
            rows.append(
                [
                    sample_id,
                    s_hat,
                    lp,
                    opt.total_cost,
                    ours_cwsc.total_cost,
                    ours_cmc.total_cost,
                ]
            )
    headers = ["sample", "s", "LP bound", "OPT", "CWSC", "CMC(b=0.2, eps=1)"]
    text = format_table(
        headers,
        rows,
        title=(
            "Section VI-D — cost vs. exhaustive optimum on small samples "
            f"(n={config['n_rows']}, k={config['k']})"
        ),
    )
    return ExperimentReport(
        experiment_id="sec6d",
        title="Comparison to optimal",
        text=text,
        data={"records": records, "config": config},
    )
