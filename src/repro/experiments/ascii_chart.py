"""Terminal line charts for the figure experiments.

The paper's Figures 5-9 are line plots; a terminal reproduction renders
them as ASCII charts (one mark per series) underneath the exact numbers.
No plotting dependency, deterministic output, fixed canvas size — the
charts are decoration for humans, the tables remain the data of record.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError

#: Series marks in legend order.
MARKS = "ox+*#@%&"


def render_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render aligned line-less scatter series on one canvas.

    Each series gets a mark from :data:`MARKS`; points are plotted at
    their nearest canvas cell (later series overwrite earlier ones on
    collisions). Axes are annotated with min/max; the legend maps marks
    to series names.
    """
    if not x_values:
        raise ValidationError("cannot chart zero points")
    if len(series) > len(MARKS):
        raise ValidationError(
            f"at most {len(MARKS)} series supported, got {len(series)}"
        )
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_values)} x positions"
            )

    x_min, x_max = min(x_values), max(x_values)
    all_y = [value for values in series.values() for value in values]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for mark, (name, values) in zip(MARKS, series.items()):
        for x, y in zip(x_values, values):
            column = round((x - x_min) / x_span * (width - 1))
            row = (height - 1) - round((y - y_min) / y_span * (height - 1))
            canvas[row][column] = mark

    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    lines = []
    if y_label:
        lines.append(f"{'':{gutter}} {y_label}")
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(f"{'':{gutter}}+{'-' * width}")
    x_axis = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(f"{'':{gutter}} {x_axis}")
    if x_label:
        lines.append(f"{'':{gutter}} {x_label:^{width}}")
    legend = "  ".join(
        f"{mark}={name}" for mark, name in zip(MARKS, series)
    )
    lines.append(f"{'':{gutter}} {legend}")
    return "\n".join(lines)
