"""Extension experiment: incremental maintenance vs. recompute-always.

Quantifies the Section VII future-work item implemented in
:mod:`repro.extensions.incremental`: stream batches into the maintainer
and into a recompute-on-every-batch loop, and compare total work (fresh
pattern materializations) and solution quality on the final table.
"""

from __future__ import annotations

from repro.datasets.lbl import lbl_trace
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.extensions.incremental import IncrementalCWSC
from repro.patterns.optimized_cwsc import optimized_cwsc

CONFIG = {
    "full": {
        "base_rows": 4_000,
        "batch_rows": 1_000,
        "n_batches": 6,
        "k": 8,
        "s_hat": 0.4,
        "seed": 90,
    },
    "small": {
        "base_rows": 300,
        "batch_rows": 100,
        "n_batches": 3,
        "k": 5,
        "s_hat": 0.4,
        "seed": 90,
    },
}


@experiment("ext-incremental", "Incremental maintenance vs. recompute (§VII)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    seed = config["seed"]
    batches = [
        lbl_trace(config["batch_rows"], seed=seed + 1 + i)
        for i in range(config["n_batches"])
    ]

    maintainer = IncrementalCWSC(
        lbl_trace(config["base_rows"], seed=seed),
        k=config["k"],
        s_hat=config["s_hat"],
    )
    for batch in batches:
        maintainer.add_records(batch)
    incremental = maintainer.current_result()

    table = lbl_trace(config["base_rows"], seed=seed)
    recompute_considered = 0
    recompute = optimized_cwsc(
        table, config["k"], config["s_hat"], on_infeasible="full_cover"
    )
    recompute_considered += recompute.metrics.sets_considered
    for batch in batches:
        table = table.extend(batch)
        recompute = optimized_cwsc(
            table, config["k"], config["s_hat"], on_infeasible="full_cover"
        )
        recompute_considered += recompute.metrics.sets_considered

    stats = maintainer.stats
    rows = [
        [
            "incremental",
            incremental.total_cost,
            incremental.n_sets,
            f"{incremental.coverage_fraction:.1%}",
            stats.metrics.sets_considered,
            f"{stats.kept}/{stats.repaired}/{stats.recomputed}",
        ],
        [
            "recompute-always",
            recompute.total_cost,
            recompute.n_sets,
            f"{recompute.coverage_fraction:.1%}",
            recompute_considered,
            "-",
        ],
    ]
    headers = [
        "strategy", "final cost", "sets", "coverage",
        "patterns considered", "kept/repaired/recomputed",
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Extension — incremental maintenance over "
            f"{config['n_batches']} batches "
            f"(k={config['k']}, s={config['s_hat']})"
        ),
    )
    return ExperimentReport(
        experiment_id="ext-incremental",
        title="Incremental maintenance vs. recompute-always",
        text=text,
        data={
            "incremental_cost": incremental.total_cost,
            "recompute_cost": recompute.total_cost,
            "incremental_considered": stats.metrics.sets_considered,
            "recompute_considered": recompute_considered,
            "stats": {
                "kept": stats.kept,
                "repaired": stats.repaired,
                "recomputed": stats.recomputed,
            },
            "config": config,
        },
    )
