"""Experiment harness plumbing: reports, scales, checkpoints, the registry.

Every paper artifact (table or figure) has one module in this package
exposing ``run(scale) -> ExperimentReport``. Reports carry both the
rendered text (what the CLI prints) and the structured data (what the
tests and EXPERIMENTS.md assertions consume).

Scales keep the harness honest *and* testable: ``full`` is the
reproduction configuration (pure-Python-sized, see DESIGN.md), ``small``
is a minutes-not-hours smoke configuration used by the test suite.

Checkpointing: long sweeps can snapshot per-cell results to a JSON file
(:class:`CheckpointStore`) and resume after a crash without recomputing
completed cells. ``run_experiment(..., checkpoint=store)`` installs the
store for the duration of the run; experiment internals (e.g.
:mod:`repro.experiments.quality_grid`) fetch it with
:func:`active_checkpoint` and wrap each expensive cell in
:meth:`CheckpointStore.cell`. The CLI exposes this as
``scwsc run <experiment> --resume``.

Resume is self-healing: a checkpoint file that cannot be parsed (torn
write from a crash, disk corruption) is quarantined to
``<name>.corrupt`` and the run recomputes from scratch, and an
individual cell whose payload fails to deserialize is dropped and
recomputed — ``--resume`` never loops forever on a bad file.

Parallel cells: ``run_experiment(..., workers=N)`` installs a worker
count that experiments supporting it (the Table IV/V quality grid) read
via :func:`worker_count` and hand their cells to :func:`fan_out_cells`,
which executes them on a supervised process pool
(:mod:`repro.resilience.pool`). Completed cells are checkpointed as
they land, so ``--workers`` composes with ``--resume``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Literal, Sequence

from repro.errors import ReproError, ValidationError

Scale = Literal["small", "full"]

#: Format marker so a future layout change can detect stale files.
_CHECKPOINT_VERSION = 1


@dataclass
class ExperimentReport:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


class CheckpointStore:
    """A JSON file of completed experiment cells, flushed after every put.

    Keys are caller-chosen strings (e.g. ``"CWSC|s=0.3"``); values must
    be JSON-serializable. Writes go to a temp file in the same directory
    followed by :func:`os.replace`, so a crash mid-write leaves the
    previous snapshot intact rather than a torn file.

    An existing file that cannot be used — truncated or garbage JSON,
    wrong layout version, a non-dict where the cell map should be — is
    *quarantined*: moved aside to ``<name>.corrupt`` (recorded in
    :attr:`quarantined_from`) and the store starts empty, so a resumed
    run recomputes instead of crashing on the same bad file forever.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._cells: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.bad_cells = 0
        self.quarantined_from: Path | None = None
        if self.path.exists():
            reason = None
            payload = None
            try:
                payload = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                reason = f"unreadable: {error}"
            if reason is None and (
                not isinstance(payload, dict)
                or payload.get("version") != _CHECKPOINT_VERSION
            ):
                version = (
                    payload.get("version")
                    if isinstance(payload, dict)
                    else type(payload).__name__
                )
                reason = (
                    f"version {version!r}, expected {_CHECKPOINT_VERSION}"
                )
            if reason is None and not isinstance(
                payload.get("cells", {}), dict
            ):
                reason = "cell map is not a JSON object"
            if reason is None:
                self._cells = dict(payload.get("cells", {}))
            else:
                self._quarantine(reason)

    def _quarantine(self, reason: str) -> None:
        """Move the unusable file aside; the store starts empty."""
        target = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, target)
        except OSError as error:
            # Can't even move it: refuse to run rather than silently
            # overwrite evidence (and possibly hit the same error again).
            raise ValidationError(
                f"checkpoint file {self.path} is {reason} and could not "
                f"be quarantined to {target}: {error}"
            ) from error
        self.quarantined_from = target
        print(
            f"warning: checkpoint file {self.path} is {reason}; "
            f"quarantined to {target} and recomputing",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def get(self, key: str):
        """The stored value for ``key`` (KeyError when absent)."""
        return self._cells[key]

    def put(self, key: str, value) -> None:
        """Store one completed cell and flush the snapshot to disk."""
        self._cells[key] = value
        self._flush()

    def clear(self) -> None:
        """Drop all cells (a fresh, non-resumed run starts clean)."""
        self._cells = {}
        if self.path.exists():
            self._flush()

    def cell(self, key: str, compute: Callable[[], object],
             serialize: Callable = lambda value: value,
             deserialize: Callable = lambda payload: payload):
        """Return the cached value for ``key`` or compute-and-store it.

        ``serialize``/``deserialize`` adapt rich objects (e.g.
        :class:`~repro.core.result.CoverResult`) to their JSON form.

        A stored payload that ``deserialize`` rejects is dropped and
        recomputed (counted in :attr:`bad_cells`) — one mangled cell
        must not wedge ``--resume``.
        """
        found, value = self.probe(key, deserialize)
        if found:
            return value
        self.misses += 1
        value = compute()
        self.put(key, serialize(value))
        return value

    def probe(self, key: str, deserialize: Callable = lambda payload: payload
              ) -> tuple[bool, object]:
        """``(True, value)`` if ``key`` is cached and decodable.

        Otherwise ``(False, None)``; an undecodable payload is dropped
        (counted in :attr:`bad_cells`) so the caller recomputes it.
        """
        if key not in self._cells:
            return False, None
        try:
            value = deserialize(self._cells[key])
        except Exception as error:  # noqa: BLE001 - any decode bug
            self.bad_cells += 1
            del self._cells[key]
            print(
                f"warning: checkpoint cell {key!r} is undecodable "
                f"({error!r}); recomputing",
                file=sys.stderr,
            )
            return False, None
        self.hits += 1
        return True, value

    def _flush(self) -> None:
        payload = {"version": _CHECKPOINT_VERSION, "cells": self._cells}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


#: The store installed by :func:`checkpointing`, if any.
_ACTIVE_CHECKPOINT: CheckpointStore | None = None


def active_checkpoint() -> CheckpointStore | None:
    """The checkpoint store of the current run (``None`` when off)."""
    return _ACTIVE_CHECKPOINT


@contextmanager
def checkpointing(store: CheckpointStore | None):
    """Install ``store`` as the active checkpoint for the duration."""
    global _ACTIVE_CHECKPOINT
    previous = _ACTIVE_CHECKPOINT
    _ACTIVE_CHECKPOINT = store
    try:
        yield store
    finally:
        _ACTIVE_CHECKPOINT = previous


#: Worker count installed by :func:`parallel_workers`; 0 = sequential.
_ACTIVE_WORKERS = 0


def worker_count() -> int:
    """Pool workers requested for the current run (0 = run in-process)."""
    return _ACTIVE_WORKERS


@contextmanager
def parallel_workers(workers: int):
    """Install a pool worker count for the duration of a run."""
    if workers < 0:
        raise ValidationError(f"workers must be >= 0, got {workers}")
    global _ACTIVE_WORKERS
    previous = _ACTIVE_WORKERS
    _ACTIVE_WORKERS = workers
    try:
        yield workers
    finally:
        _ACTIVE_WORKERS = previous


def fan_out_cells(
    requests: Sequence[tuple[str, object]],
    serialize: Callable,
    deserialize: Callable,
    memory_limit_mb: int | None = None,
    request_timeout: float | None = None,
) -> dict[str, object]:
    """Execute ``(key, SolveRequest)`` cells on a supervised worker pool.

    The pool counterpart of :meth:`CheckpointStore.cell`: cells already
    in the active checkpoint are loaded (with the same bad-cell
    recompute semantics), the rest run on a
    :class:`~repro.resilience.pool.SolverPool` sized by
    :func:`worker_count`, and every finished cell is checkpointed the
    moment its result arrives — killing the run mid-grid and resuming
    with ``--resume --workers N`` (or sequentially) picks up where it
    stopped.

    Requests run in *direct solver* mode (``request.solver`` names one
    algorithm), so a pool-computed cell is the same deterministic value
    the sequential path produces. A request whose pool outcome is
    ``"failed"`` (no verified answer at all) aborts the run with
    :class:`~repro.errors.ReproError` — the checkpoint keeps everything
    that finished.
    """
    from repro.resilience.pool import PoolConfig, SolverPool

    store = active_checkpoint()
    results: dict[str, object] = {}
    todo = []
    for key, request in requests:
        if store is not None:
            found, cached = store.probe(key, deserialize)
            if found:
                results[key] = cached
                continue
        todo.append(request)
        if request.tag is None:
            request.tag = key
        if store is not None:
            store.misses += 1
    if not todo:
        return results

    failures: list[str] = []

    def on_result(outcome) -> None:
        if outcome.status == "failed" or outcome.result is None:
            failures.append(
                f"{outcome.tag}: "
                f"{outcome.provenance.get('failure', 'no verified answer')}"
            )
            return
        results[outcome.tag] = outcome.result
        if store is not None:
            store.put(outcome.tag, serialize(outcome.result))

    config = PoolConfig(
        workers=max(1, worker_count()),
        memory_limit_mb=memory_limit_mb,
        request_timeout=request_timeout,
    )
    with SolverPool(config) as pool:
        pool.run(todo, on_result=on_result)
    if failures:
        raise ReproError(
            "worker pool could not produce verified answers for "
            f"{len(failures)} cell(s): " + "; ".join(sorted(failures))
        )
    return results


_REGISTRY: dict[str, Callable[[Scale], ExperimentReport]] = {}
_DESCRIPTIONS: dict[str, str] = {}


def experiment(experiment_id: str, description: str):
    """Register an experiment ``run`` function under an id."""

    def decorate(fn: Callable[[Scale], ExperimentReport]):
        if experiment_id in _REGISTRY:
            raise ValidationError(
                f"experiment id {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = fn
        _DESCRIPTIONS[experiment_id] = description
        return fn

    return decorate


def available_experiments() -> dict[str, str]:
    """``id -> description`` of every registered experiment."""
    _load_all()
    return dict(sorted(_DESCRIPTIONS.items()))


def run_experiment(
    experiment_id: str,
    scale: Scale = "full",
    checkpoint: CheckpointStore | None = None,
    workers: int = 0,
) -> ExperimentReport:
    """Run one experiment by id.

    With a ``checkpoint`` store, experiments that support per-cell
    snapshots (currently the Table IV/V quality grid) resume completed
    cells from it and append new ones as they finish. With
    ``workers > 0``, experiments that support cell fan-out run their
    cells on a supervised process pool of that size (others are
    unaffected); the two compose.
    """
    _load_all()
    if scale not in ("small", "full"):
        raise ValidationError(f"scale must be 'small' or 'full', got {scale}")
    try:
        fn = _REGISTRY[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    with checkpointing(checkpoint), parallel_workers(workers):
        return fn(scale)


def _load_all() -> None:
    """Import every experiment module so decorators register them."""
    from repro.experiments import (  # noqa: F401
        crossdata,
        ext_incremental,
        ext_seeds,
        fig5_datasize,
        fig6_patterns_considered,
        fig7_attributes,
        fig8_k,
        fig9_coverage,
        running_example,
        sec3_adversarial,
        sec6b_robustness,
        sec6c_max_coverage,
        sec6d_optimal,
        table4_quality,
        table5_runtime,
        table6_wsc_size,
    )
