"""Experiment harness plumbing: reports, scales, checkpoints, the registry.

Every paper artifact (table or figure) has one module in this package
exposing ``run(scale) -> ExperimentReport``. Reports carry both the
rendered text (what the CLI prints) and the structured data (what the
tests and EXPERIMENTS.md assertions consume).

Scales keep the harness honest *and* testable: ``full`` is the
reproduction configuration (pure-Python-sized, see DESIGN.md), ``small``
is a minutes-not-hours smoke configuration used by the test suite.

Checkpointing: long sweeps can snapshot per-cell results to a JSON file
(:class:`CheckpointStore`) and resume after a crash without recomputing
completed cells. ``run_experiment(..., checkpoint=store)`` installs the
store for the duration of the run; experiment internals (e.g.
:mod:`repro.experiments.quality_grid`) fetch it with
:func:`active_checkpoint` and wrap each expensive cell in
:meth:`CheckpointStore.cell`. The CLI exposes this as
``scwsc run <experiment> --resume``.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Literal

from repro.errors import ValidationError

Scale = Literal["small", "full"]

#: Format marker so a future layout change can detect stale files.
_CHECKPOINT_VERSION = 1


@dataclass
class ExperimentReport:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


class CheckpointStore:
    """A JSON file of completed experiment cells, flushed after every put.

    Keys are caller-chosen strings (e.g. ``"CWSC|s=0.3"``); values must
    be JSON-serializable. Writes go to a temp file in the same directory
    followed by :func:`os.replace`, so a crash mid-write leaves the
    previous snapshot intact rather than a torn file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._cells: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise ValidationError(
                    f"checkpoint file {self.path} is unreadable: {error}"
                ) from error
            if payload.get("version") != _CHECKPOINT_VERSION:
                raise ValidationError(
                    f"checkpoint file {self.path} has version "
                    f"{payload.get('version')!r}, expected "
                    f"{_CHECKPOINT_VERSION}; delete it to start fresh"
                )
            self._cells = dict(payload.get("cells", {}))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def get(self, key: str):
        """The stored value for ``key`` (KeyError when absent)."""
        return self._cells[key]

    def put(self, key: str, value) -> None:
        """Store one completed cell and flush the snapshot to disk."""
        self._cells[key] = value
        self._flush()

    def clear(self) -> None:
        """Drop all cells (a fresh, non-resumed run starts clean)."""
        self._cells = {}
        if self.path.exists():
            self._flush()

    def cell(self, key: str, compute: Callable[[], object],
             serialize: Callable = lambda value: value,
             deserialize: Callable = lambda payload: payload):
        """Return the cached value for ``key`` or compute-and-store it.

        ``serialize``/``deserialize`` adapt rich objects (e.g.
        :class:`~repro.core.result.CoverResult`) to their JSON form.
        """
        if key in self._cells:
            self.hits += 1
            return deserialize(self._cells[key])
        self.misses += 1
        value = compute()
        self.put(key, serialize(value))
        return value

    def _flush(self) -> None:
        payload = {"version": _CHECKPOINT_VERSION, "cells": self._cells}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


#: The store installed by :func:`checkpointing`, if any.
_ACTIVE_CHECKPOINT: CheckpointStore | None = None


def active_checkpoint() -> CheckpointStore | None:
    """The checkpoint store of the current run (``None`` when off)."""
    return _ACTIVE_CHECKPOINT


@contextmanager
def checkpointing(store: CheckpointStore | None):
    """Install ``store`` as the active checkpoint for the duration."""
    global _ACTIVE_CHECKPOINT
    previous = _ACTIVE_CHECKPOINT
    _ACTIVE_CHECKPOINT = store
    try:
        yield store
    finally:
        _ACTIVE_CHECKPOINT = previous


_REGISTRY: dict[str, Callable[[Scale], ExperimentReport]] = {}
_DESCRIPTIONS: dict[str, str] = {}


def experiment(experiment_id: str, description: str):
    """Register an experiment ``run`` function under an id."""

    def decorate(fn: Callable[[Scale], ExperimentReport]):
        if experiment_id in _REGISTRY:
            raise ValidationError(
                f"experiment id {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = fn
        _DESCRIPTIONS[experiment_id] = description
        return fn

    return decorate


def available_experiments() -> dict[str, str]:
    """``id -> description`` of every registered experiment."""
    _load_all()
    return dict(sorted(_DESCRIPTIONS.items()))


def run_experiment(
    experiment_id: str,
    scale: Scale = "full",
    checkpoint: CheckpointStore | None = None,
) -> ExperimentReport:
    """Run one experiment by id.

    With a ``checkpoint`` store, experiments that support per-cell
    snapshots (currently the Table IV/V quality grid) resume completed
    cells from it and append new ones as they finish.
    """
    _load_all()
    if scale not in ("small", "full"):
        raise ValidationError(f"scale must be 'small' or 'full', got {scale}")
    try:
        fn = _REGISTRY[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    with checkpointing(checkpoint):
        return fn(scale)


def _load_all() -> None:
    """Import every experiment module so decorators register them."""
    from repro.experiments import (  # noqa: F401
        crossdata,
        ext_incremental,
        ext_seeds,
        fig5_datasize,
        fig6_patterns_considered,
        fig7_attributes,
        fig8_k,
        fig9_coverage,
        running_example,
        sec3_adversarial,
        sec6b_robustness,
        sec6c_max_coverage,
        sec6d_optimal,
        table4_quality,
        table5_runtime,
        table6_wsc_size,
    )
