"""Experiment harness plumbing: reports, scales, and the registry.

Every paper artifact (table or figure) has one module in this package
exposing ``run(scale) -> ExperimentReport``. Reports carry both the
rendered text (what the CLI prints) and the structured data (what the
tests and EXPERIMENTS.md assertions consume).

Scales keep the harness honest *and* testable: ``full`` is the
reproduction configuration (pure-Python-sized, see DESIGN.md), ``small``
is a minutes-not-hours smoke configuration used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.errors import ValidationError

Scale = Literal["small", "full"]


@dataclass
class ExperimentReport:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


_REGISTRY: dict[str, Callable[[Scale], ExperimentReport]] = {}
_DESCRIPTIONS: dict[str, str] = {}


def experiment(experiment_id: str, description: str):
    """Register an experiment ``run`` function under an id."""

    def decorate(fn: Callable[[Scale], ExperimentReport]):
        if experiment_id in _REGISTRY:
            raise ValidationError(
                f"experiment id {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = fn
        _DESCRIPTIONS[experiment_id] = description
        return fn

    return decorate


def available_experiments() -> dict[str, str]:
    """``id -> description`` of every registered experiment."""
    _load_all()
    return dict(sorted(_DESCRIPTIONS.items()))


def run_experiment(experiment_id: str, scale: Scale = "full") -> ExperimentReport:
    """Run one experiment by id."""
    _load_all()
    if scale not in ("small", "full"):
        raise ValidationError(f"scale must be 'small' or 'full', got {scale}")
    try:
        fn = _REGISTRY[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
    return fn(scale)


def _load_all() -> None:
    """Import every experiment module so decorators register them."""
    from repro.experiments import (  # noqa: F401
        crossdata,
        ext_incremental,
        ext_seeds,
        fig5_datasize,
        fig6_patterns_considered,
        fig7_attributes,
        fig8_k,
        fig9_coverage,
        running_example,
        sec3_adversarial,
        sec6b_robustness,
        sec6c_max_coverage,
        sec6d_optimal,
        table4_quality,
        table5_runtime,
        table6_wsc_size,
    )
