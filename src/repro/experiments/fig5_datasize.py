"""Figure 5: running time vs. data size.

Paper setup: random samples of LBL, k = 10, s = 0.3, b = 1, eps = 1.
Expected shape: the optimized algorithms run at least ~2x faster than
their unoptimized counterparts, optimized runtimes grow sub-linearly, and
CWSC is faster than CMC (which retries multiple budgets).
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_chart
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_series_table
from repro.experiments.sweeps import ALGORITHMS, size_sweep

CONFIG = {
    "full": {
        "sizes": (6_000, 12_000, 24_000, 48_000),
        "master_rows": 48_000,
        "seed": 7,
        "k": 10,
        "s_hat": 0.3,
    },
    "small": {
        "sizes": (200, 400, 800),
        "master_rows": 800,
        "seed": 7,
        "k": 4,
        "s_hat": 0.3,
    },
}


@experiment("fig5", "Running time vs. data size (Fig. 5)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = size_sweep(
        config["sizes"],
        config["master_rows"],
        config["seed"],
        config["k"],
        config["s_hat"],
    )
    series = {
        name: [row[name]["runtime"] for row in rows] for name in ALGORITHMS
    }
    x_values = [row["x"] for row in rows]
    text = format_series_table(
        "tuples",
        x_values,
        series,
        title=(
            "Fig. 5 — running time (seconds) vs. number of tuples "
            f"(k={config['k']}, s={config['s_hat']}, b=1, eps=1)"
        ),
    )
    text += "\n\n" + render_chart(
        x_values, series, y_label="seconds", x_label="tuples"
    )
    return ExperimentReport(
        experiment_id="fig5",
        title="Running time vs. data size",
        text=text,
        data={"rows": rows, "config": config},
    )
