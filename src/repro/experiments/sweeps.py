"""Shared four-algorithm sweeps behind Figures 5-9.

Each sweep runs the four algorithms the paper plots — unoptimized CMC and
CWSC on the fully enumerated pattern system, and their lattice-optimized
counterparts directly on the table — and records runtime, patterns
considered, solution cost/size, and coverage. The unoptimized runtimes
include pattern enumeration and benefit computation (Fig. 1 lines 4-5 /
Fig. 2 lines 3-4 are part of those algorithms), which the build step
realizes.

Sweep results are memoized per parameterization: Fig. 5 (runtime) and
Fig. 6 (patterns considered) are two views of the same runs, exactly as in
the paper.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.datasets.lbl import LBL_ATTRIBUTES, lbl_trace
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.pattern_sets import build_set_system
from repro.patterns.table import PatternTable

#: Algorithm keys in plot order (matches the paper's legends).
ALGORITHMS = ("cmc", "optimized_cmc", "cwsc", "optimized_cwsc")

_sweep_cache: dict[tuple, list[dict]] = {}
_master_cache: dict[tuple, PatternTable] = {}


def master_trace(n_rows: int, seed: int) -> PatternTable:
    """Cached synthetic LBL master table (sampled down by the sweeps)."""
    key = (n_rows, seed)
    if key not in _master_cache:
        _master_cache[key] = lbl_trace(n_rows, seed=seed)
    return _master_cache[key]


def run_four(
    table: PatternTable,
    k: int,
    s_hat: float,
    b: float = 1.0,
    eps: float = 1.0,
) -> dict[str, dict]:
    """Run all four algorithms on one table; returns per-algorithm stats."""
    build_start = time.perf_counter()
    system = build_set_system(table, "max")
    build_seconds = time.perf_counter() - build_start

    outcomes = {
        "cmc": cmc_epsilon(system, k, s_hat, b=b, eps=eps),
        "cwsc": cwsc(system, k, s_hat, on_infeasible="full_cover"),
        "optimized_cmc": optimized_cmc(table, k, s_hat, b=b, eps=eps),
        "optimized_cwsc": optimized_cwsc(
            table, k, s_hat, on_infeasible="full_cover"
        ),
    }
    stats: dict[str, dict] = {}
    for name, result in outcomes.items():
        runtime = result.metrics.runtime_seconds
        if not name.startswith("optimized"):
            # The unoptimized algorithms enumerate every pattern and
            # compute its benefit up front; charge that work to them.
            runtime += build_seconds
        stats[name] = {
            "runtime": runtime,
            "considered": result.metrics.sets_considered,
            "cost": result.total_cost,
            "n_sets": result.n_sets,
            "covered": result.covered,
            "rounds": result.metrics.budget_rounds,
        }
    return stats


def size_sweep(
    sizes: Sequence[int],
    master_rows: int,
    seed: int,
    k: int,
    s_hat: float,
    b: float = 1.0,
    eps: float = 1.0,
) -> list[dict]:
    """Figs. 5/6: one four-way run per sampled data size."""
    key = ("size", tuple(sizes), master_rows, seed, k, s_hat, b, eps)
    if key in _sweep_cache:
        return _sweep_cache[key]
    master = master_trace(master_rows, seed)
    rows = []
    for size in sizes:
        table = master if size == master.n_rows else master.sample(size, seed)
        rows.append({"x": size, **run_four(table, k, s_hat, b=b, eps=eps)})
    _sweep_cache[key] = rows
    return rows


def attribute_sweep(
    attribute_counts: Sequence[int],
    n_rows: int,
    seed: int,
    k: int,
    s_hat: float,
    b: float = 1.0,
    eps: float = 1.0,
) -> list[dict]:
    """Fig. 7: drop pattern attributes one at a time (prefix projection)."""
    key = ("attrs", tuple(attribute_counts), n_rows, seed, k, s_hat, b, eps)
    if key in _sweep_cache:
        return _sweep_cache[key]
    master = master_trace(n_rows, seed)
    rows = []
    for count in attribute_counts:
        table = master.project(LBL_ATTRIBUTES[:count])
        rows.append({"x": count, **run_four(table, k, s_hat, b=b, eps=eps)})
    _sweep_cache[key] = rows
    return rows


def k_sweep(
    k_values: Sequence[int],
    n_rows: int,
    seed: int,
    s_hat: float,
    b: float = 1.0,
    eps: float = 1.0,
) -> list[dict]:
    """Fig. 8: vary the maximum solution size ``k``."""
    key = ("k", tuple(k_values), n_rows, seed, s_hat, b, eps)
    if key in _sweep_cache:
        return _sweep_cache[key]
    table = master_trace(n_rows, seed)
    rows = [
        {"x": k, **run_four(table, k, s_hat, b=b, eps=eps)}
        for k in k_values
    ]
    _sweep_cache[key] = rows
    return rows


def coverage_sweep(
    s_values: Sequence[float],
    n_rows: int,
    seed: int,
    k: int,
    b: float = 1.0,
    eps: float = 1.0,
) -> list[dict]:
    """Fig. 9: vary the coverage fraction ``s``."""
    key = ("s", tuple(s_values), n_rows, seed, k, b, eps)
    if key in _sweep_cache:
        return _sweep_cache[key]
    table = master_trace(n_rows, seed)
    rows = [
        {"x": s_hat, **run_four(table, k, s_hat, b=b, eps=eps)}
        for s_hat in s_values
    ]
    _sweep_cache[key] = rows
    return rows
