"""Table V: running time (seconds) of CWSC vs. CMC.

Same grid as Table IV (memoized). Expected shape: CWSC takes well under
half the time of every CMC configuration; increasing ``b`` decreases
CMC's runtime (fewer budget rounds), increasing ``eps`` increases it
(more levels to maintain).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.quality_grid import grid_results
from repro.experiments.reporting import format_table


@experiment("table5", "Running time: CWSC vs. CMC(b, eps) (Table V)")
def run(scale: Scale = "full") -> ExperimentReport:
    grid = grid_results(scale)
    config = grid["config"]
    s_values = config["s_values"]
    build = grid["build_seconds"]
    headers = ["Algorithm", *[f"s = {s:g}" for s in s_values]]
    rows = [
        [
            label,
            *[
                build + results[s].metrics.runtime_seconds
                for s in s_values
            ],
        ]
        for label, results in grid["rows"].items()
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Table V — running time in seconds, including pattern "
            f"enumeration (n={config['n_rows']}, k={config['k']})"
        ),
    )
    return ExperimentReport(
        experiment_id="table5",
        title="Running time comparison of CMC and CWSC",
        text=text,
        data={
            "runtimes": {
                label: {
                    s: build + results[s].metrics.runtime_seconds
                    for s in s_values
                }
                for label, results in grid["rows"].items()
            },
            "config": config,
        },
    )
