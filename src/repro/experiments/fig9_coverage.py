"""Figure 9: running time vs. the coverage fraction ``s``.

Expected shape (per the paper): CWSC's runtime is essentially flat in
``s`` (the iteration count depends on ``k``, not ``s``), while CMC's
grows — reaching a larger coverage needs a larger budget, so more budget
rounds are tried before a feasible solution appears.
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_chart
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_series_table
from repro.experiments.sweeps import ALGORITHMS, coverage_sweep

CONFIG = {
    "full": {
        "s_values": (0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
        "n_rows": 12_000,
        "seed": 7,
        "k": 10,
    },
    "small": {
        "s_values": (0.2, 0.4),
        "n_rows": 400,
        "seed": 7,
        "k": 4,
    },
}


@experiment("fig9", "Running time vs. coverage fraction s (Fig. 9)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = coverage_sweep(
        config["s_values"],
        config["n_rows"],
        config["seed"],
        config["k"],
    )
    series = {
        name: [row[name]["runtime"] for row in rows] for name in ALGORITHMS
    }
    x_values = [row["x"] for row in rows]
    text = format_series_table(
        "s",
        x_values,
        series,
        title=(
            "Fig. 9 — running time (seconds) vs. coverage fraction "
            f"(n={config['n_rows']}, k={config['k']}, b=1, eps=1)"
        ),
    )
    text += "\n\n" + render_chart(
        x_values, series, y_label="seconds", x_label="coverage fraction s"
    )
    return ExperimentReport(
        experiment_id="fig9",
        title="Running time vs. coverage fraction",
        text=text,
        data={"rows": rows, "config": config},
    )
