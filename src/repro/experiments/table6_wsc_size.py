"""Table VI: number of patterns the plain partial weighted set cover
heuristic needs to reach each coverage threshold.

This is the motivating comparison of Section VI-C: weighted set cover
optimizes coverage and cost but has no size constraint, so as the coverage
fraction grows its solutions balloon far past any reasonable ``k``.
"""

from __future__ import annotations

from repro.baselines.weighted_set_cover import weighted_set_cover
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import master_trace
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 12_000,
        "seed": 7,
        "s_values": (0.5, 0.6, 0.7, 0.8, 0.9),
    },
    "small": {
        "n_rows": 400,
        "seed": 7,
        "s_values": (0.5, 0.7, 0.9),
    },
}


@experiment("table6", "Patterns used by plain weighted set cover (Table VI)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    table = master_trace(config["n_rows"], config["seed"])
    system = build_set_system(table, "max")
    counts = {}
    costs = {}
    for s_hat in config["s_values"]:
        result = weighted_set_cover(system, s_hat)
        counts[s_hat] = result.n_sets
        costs[s_hat] = result.total_cost
    headers = ["coverage fraction s", *[f"{s:g}" for s in config["s_values"]]]
    rows = [
        ["number of patterns", *[counts[s] for s in config["s_values"]]],
        ["total cost", *[costs[s] for s in config["s_values"]]],
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Table VI — greedy partial weighted set cover, no size "
            f"constraint (n={config['n_rows']})"
        ),
    )
    return ExperimentReport(
        experiment_id="table6",
        title="Weighted set cover needs many patterns",
        text=text,
        data={"counts": counts, "costs": costs, "config": config},
    )
