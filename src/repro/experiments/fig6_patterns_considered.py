"""Figure 6: number of patterns considered vs. data size.

Same runs as Figure 5 (memoized, so running both costs one sweep), viewed
through the ``sets_considered`` metric. Expected shape: the optimized
algorithms consider an order of magnitude fewer patterns; CMC's counts sum
over its budget rounds and therefore dominate CWSC's.
"""

from __future__ import annotations

from repro.experiments.ascii_chart import render_chart
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.fig5_datasize import CONFIG
from repro.experiments.reporting import format_series_table
from repro.experiments.sweeps import ALGORITHMS, size_sweep


@experiment("fig6", "Patterns considered vs. data size (Fig. 6)")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    rows = size_sweep(
        config["sizes"],
        config["master_rows"],
        config["seed"],
        config["k"],
        config["s_hat"],
    )
    series = {
        name: [row[name]["considered"] for row in rows]
        for name in ALGORITHMS
    }
    x_values = [row["x"] for row in rows]
    text = format_series_table(
        "tuples",
        x_values,
        series,
        title=(
            "Fig. 6 — patterns considered vs. number of tuples "
            f"(k={config['k']}, s={config['s_hat']}, b=1, eps=1)"
        ),
    )
    text += "\n\n" + render_chart(
        x_values, series, y_label="patterns considered", x_label="tuples"
    )
    return ExperimentReport(
        experiment_id="fig6",
        title="Patterns considered vs. data size",
        text=text,
        data={"rows": rows, "config": config},
    )
