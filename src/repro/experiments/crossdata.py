"""Cross-workload check: the Table IV comparison on census-like data.

The paper evaluates on one real data set (LBL). This extension experiment
re-runs the CWSC-vs-CMC quality comparison on the synthetic census table
(:mod:`repro.datasets.census`) to check that the qualitative conclusions
are not artifacts of the network-trace structure.
"""

from __future__ import annotations

from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.datasets.census import census_table
from repro.experiments.base import ExperimentReport, Scale, experiment
from repro.experiments.reporting import format_table
from repro.patterns.pattern_sets import build_set_system

CONFIG = {
    "full": {
        "n_rows": 6_000,
        "seed": 17,
        "k": 10,
        "s_values": (0.3, 0.5, 0.7),
        "cmc_configs": ((1.0, 1.0), (2.0, 2.0)),
    },
    "small": {
        "n_rows": 400,
        "seed": 17,
        "k": 5,
        "s_values": (0.4,),
        "cmc_configs": ((1.0, 1.0),),
    },
}


@experiment("crossdata", "Table IV-style comparison on census data")
def run(scale: Scale = "full") -> ExperimentReport:
    config = CONFIG[scale]
    table = census_table(config["n_rows"], seed=config["seed"])
    system = build_set_system(table, "max")

    rows = []
    records = []
    for s_hat in config["s_values"]:
        ours = cwsc(system, config["k"], s_hat, on_infeasible="full_cover")
        cmc_costs = {}
        for b, eps in config["cmc_configs"]:
            outcome = cmc_epsilon(system, config["k"], s_hat, b=b, eps=eps)
            cmc_costs[(b, eps)] = outcome.total_cost
        records.append(
            {"s": s_hat, "cwsc": ours.total_cost, "cmc": cmc_costs,
             "cwsc_sets": ours.n_sets}
        )
        rows.append(
            [s_hat, ours.total_cost, ours.n_sets, *cmc_costs.values()]
        )
    headers = [
        "s", "CWSC cost", "CWSC sets",
        *[f"CMC (b={b:g}, eps={eps:g})" for b, eps in config["cmc_configs"]],
    ]
    text = format_table(
        headers,
        rows,
        title=(
            "Cross-workload — census table "
            f"(n={config['n_rows']}, k={config['k']}, max income cost)"
        ),
    )
    return ExperimentReport(
        experiment_id="crossdata",
        title="Quality comparison on census-like data",
        text=text,
        data={"records": records, "config": config},
    )
