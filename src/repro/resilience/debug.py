"""Hang diagnostics, gated behind ``REPRO_DEBUG_HANG=1``.

A solve that blows its deadline is easy to *detect* (the harness kills or
degrades it) but hard to *explain*: by the time control returns, the
stack that was stuck is gone. With ``REPRO_DEBUG_HANG=1`` in the
environment, the resilience harness arms :mod:`faulthandler` watchdogs
around deadline-bounded work, so the moment a budget is blown every
thread's traceback is dumped to stderr — while the offending frame is
still on the stack:

* :func:`repro.resilience.resilient_solve` arms a watchdog around each
  chain stage that runs under a finite deadline;
* pool workers (:mod:`repro.resilience.pool.worker`) arm one around each
  request's solve, so a worker the supervisor is about to hard-kill
  explains itself first.

The gate is read from the environment on every call (it is consulted
once per solve, not per iteration), so operators can flip it on a
running experiment's next cell without restarting.
"""

from __future__ import annotations

import faulthandler
import os
import sys
from contextlib import contextmanager

from repro.obs.log import get_logger

__all__ = ["hang_debug_enabled", "hang_watchdog"]

_ENV_VAR = "REPRO_DEBUG_HANG"

logger = get_logger(__name__)


def hang_debug_enabled() -> bool:
    """Whether ``REPRO_DEBUG_HANG`` asks for deadline-blow tracebacks."""
    return os.environ.get(_ENV_VAR, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


@contextmanager
def hang_watchdog(seconds: float | None, context: str = ""):
    """Dump all-thread tracebacks if the body outlives ``seconds``.

    A no-op when the gate is off, ``seconds`` is ``None``/non-positive/
    infinite, or :mod:`faulthandler` cannot arm (no usable stderr fd).
    The watchdog repeats every ``seconds`` until the body exits, so a
    wedged worker keeps reporting while the supervisor's grace period
    runs out.
    """
    armed = False
    if (
        seconds is not None
        and 0 < seconds < float("inf")
        and hang_debug_enabled()
    ):
        if context:
            # WARNING so the message clears the default console level of
            # repro.obs.log.console_logging — an operator who set
            # REPRO_DEBUG_HANG asked to see this. (faulthandler itself
            # writes raw tracebacks to stderr; only the arming notice
            # goes through logging.)
            logger.warning(
                "REPRO_DEBUG_HANG: watchdog armed (%.3fs) for %s",
                seconds,
                context,
            )
        try:
            faulthandler.dump_traceback_later(
                seconds, repeat=True, file=sys.stderr
            )
            armed = True
        except (ValueError, OSError, RuntimeError):  # pragma: no cover
            armed = False
    try:
        yield
    finally:
        if armed:
            faulthandler.cancel_dump_traceback_later()
