"""Cooperative deadlines for the core solvers.

The paper's algorithms are all iterative, so instead of threads or signals
we use *cooperative* cancellation: a :class:`Deadline` is threaded through a
solver call, and the solver polls it at checkpoints inside its greedy /
search loops. When the deadline expires the solver raises
:class:`~repro.errors.DeadlineExceeded` with the best partial
:class:`~repro.core.result.CoverResult` it has found, so a caller (notably
:func:`repro.resilience.resilient_solve`) can degrade gracefully instead of
losing all work.

Polling every inner-loop iteration would put a ``perf_counter`` call on the
hot path, so :meth:`Deadline.poll` only reads the clock every
``stride`` calls. With the default stride of 64 the added cost is a counter
increment per iteration, while a 50 ms deadline is still honored within a
few hundred microseconds on the loop bodies used here.

This module deliberately depends only on the standard library and
:mod:`repro.errors`, so every core solver can import it without cycles.
"""

from __future__ import annotations

import math
import time

from repro.errors import DeadlineExceeded, ValidationError

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget that solvers poll cooperatively.

    Parameters
    ----------
    seconds:
        Budget from *now*; ``math.inf`` means "never expires".
    stride:
        How many :meth:`poll` calls share one clock read.

    Examples
    --------
    >>> deadline = Deadline.after(0.5)
    >>> deadline.expired()
    False
    >>> Deadline.never().remaining()
    inf
    """

    __slots__ = ("_expires_at", "_stride", "_countdown")

    def __init__(self, seconds: float, stride: int = 64) -> None:
        if math.isnan(seconds) or seconds < 0:
            raise ValidationError(
                f"deadline seconds must be >= 0, got {seconds!r}"
            )
        if stride < 1:
            raise ValidationError(f"stride must be >= 1, got {stride}")
        self._expires_at = (
            math.inf if math.isinf(seconds) else time.monotonic() + seconds
        )
        self._stride = stride
        self._countdown = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def after(cls, seconds: float, stride: int = 64) -> "Deadline":
        """A deadline expiring ``seconds`` from now."""
        return cls(seconds, stride=stride)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (useful as a neutral default)."""
        return cls(math.inf)

    def sub(self, seconds: float) -> "Deadline":
        """A child deadline: ``seconds`` from now, capped by this one.

        Used by the fallback chain to give each stage its slice of the
        total budget without ever outliving the overall deadline.
        """
        child = Deadline(max(0.0, min(seconds, self.remaining())),
                         stride=self._stride)
        return child

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left (``inf`` for a never-expiring deadline, >= 0)."""
        if math.isinf(self._expires_at):
            return math.inf
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        """Whether the deadline has passed (always reads the clock)."""
        if math.isinf(self._expires_at):
            return False
        return time.monotonic() >= self._expires_at

    def poll(self) -> bool:
        """Cheap strided expiry check for hot loops.

        Reads the clock only every ``stride`` calls; returns ``True``
        when the deadline is known to have expired.
        """
        if math.isinf(self._expires_at):
            return False
        if self._countdown > 0:
            self._countdown -= 1
            return False
        self._countdown = self._stride - 1
        return time.monotonic() >= self._expires_at

    def require(self, context: str, partial=None) -> None:
        """Raise :class:`DeadlineExceeded` if expired (full clock read)."""
        if self.expired():
            raise DeadlineExceeded(
                f"{context}: deadline expired", partial=partial
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"
