"""Length-prefixed JSON IPC between the pool supervisor and its workers.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding a single object. The
format is deliberately dumb — no pickling, no shared memory — because
the failure model includes workers that die mid-write, OOM-killed
processes leaving half a frame in the pipe, and chaos-injected garbage.
Decoding therefore never trusts the stream: implausible lengths, bodies
that are not valid JSON objects, and streams that end mid-frame all
raise :class:`~repro.errors.ProtocolError`, which the supervisor treats
as "this worker is unhealthy" rather than letting it crash the parent.

Frame kinds (the ``kind`` key):

========  =========  ===================================================
kind      direction  meaning
========  =========  ===================================================
ready     w -> s     worker finished importing and can accept requests
solve     s -> w     run one solve request (see :func:`encode_request`)
stage     w -> s     a chain stage is starting (powers circuit-breaker
                     blame and provenance)
result    w -> s     terminal answer for one request id
ping      s -> w     liveness probe
pong      w -> s     liveness reply
shutdown  s -> w     drain and exit 0
========  =========  ===================================================

Set systems cross the boundary as plain lists. Labels are *not*
pickled: each label travels as its ``repr`` text plus (when the label
defines one) its ``sort_key()`` tuple, and is rebuilt as a
:class:`RemoteLabel` shim on the worker side. The shim reproduces both
the label's ``repr`` and its tie-break ordering
(:func:`repro.core.greedy_common.canonical_key`), so a worker solving a
serialized system selects *exactly* the sets the parent would have —
which is what makes pool requeues and ``--workers`` grids deterministic.
"""

from __future__ import annotations

import hashlib
import json
import struct
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import BinaryIO

from repro.core.setsystem import SetSystem
from repro.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "SYSTEM_CACHE_SIZE",
    "FrameReader",
    "RemoteLabel",
    "RemoteSortedLabel",
    "SolveRequest",
    "encode_frame",
    "encode_request",
    "read_frame",
    "request_from_payload",
    "system_from_payload",
    "system_payload_and_fingerprint",
    "system_to_payload",
    "write_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame body; anything larger is treated as garbage.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """Serialize one message to its wire form (header + JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def write_frame(stream: BinaryIO, payload: dict, injector=None) -> None:
    """Encode and write one frame, flushing so the peer sees it now.

    ``injector`` is the chaos hook: a
    :class:`~repro.resilience.faults.FaultInjector` may corrupt the
    encoded bytes (worker write path) to exercise the supervisor's
    tolerant decoding.
    """
    data = encode_frame(payload)
    if injector is not None:
        data = injector.corrupt_frame(data)
    stream.write(data)
    stream.flush()


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


def _read_exact(stream: BinaryIO, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before any byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"stream ended mid-frame ({n - remaining} of {n} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict | None:
    """Blocking frame read (worker side). ``None`` means clean EOF."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    body = _read_exact(stream, length)
    if body is None:
        raise ProtocolError("stream ended between header and body")
    return _decode_body(body)


class FrameReader:
    """Incremental decoder for the supervisor's non-blocking reads.

    Feed it whatever ``os.read`` returned; it yields every complete
    frame and buffers the tail. Garbage raises
    :class:`~repro.errors.ProtocolError` immediately — once a stream has
    lied about one length prefix there is no way to resynchronize, so
    the supervisor kills the worker and starts a fresh pipe.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            frames.append(_decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# Label shims: repr + tie-break fidelity across the process boundary
# ----------------------------------------------------------------------
class RemoteLabel:
    """A label rebuilt from its ``repr`` on the worker side.

    ``repr(shim)`` returns the original label's ``repr`` text, so results
    serialized by the worker (labels travel as ``repr`` strings) are
    byte-identical to what the parent would have produced, and
    ``canonical_key``'s ``repr`` fallback orders shims exactly like the
    originals.
    """

    __slots__ = ("_repr_text",)

    def __init__(self, repr_text: str) -> None:
        self._repr_text = repr_text

    def __repr__(self) -> str:
        return self._repr_text

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RemoteLabel)
            and self._repr_text == other._repr_text
        )

    def __hash__(self) -> int:
        return hash(self._repr_text)


class RemoteSortedLabel(RemoteLabel):
    """Shim for labels that define ``sort_key()`` (patterns).

    Kept as a separate class so ``canonical_key``'s ``getattr(label,
    "sort_key")`` probe sees the method only when the original had one —
    labels within one system must stay homogeneous.
    """

    __slots__ = ("_sort_key",)

    def __init__(self, repr_text: str, sort_key: tuple) -> None:
        super().__init__(repr_text)
        self._sort_key = sort_key

    def sort_key(self) -> tuple:
        return self._sort_key


def _tuplize(value):
    """JSON arrays back to tuples, recursively (sort keys are tuples)."""
    if isinstance(value, list):
        return tuple(_tuplize(item) for item in value)
    return value


def _label_to_payload(label):
    if label is None:
        return None
    sort_key = getattr(label, "sort_key", None)
    if sort_key is not None:
        return {"r": repr(label), "k": sort_key()}
    return {"r": repr(label)}


def _label_from_payload(payload):
    if payload is None:
        return None
    if not isinstance(payload, dict) or "r" not in payload:
        raise ProtocolError(f"malformed label payload: {payload!r}")
    if "k" in payload:
        return RemoteSortedLabel(payload["r"], _tuplize(payload["k"]))
    return RemoteLabel(payload["r"])


# ----------------------------------------------------------------------
# Set systems
# ----------------------------------------------------------------------
def system_to_payload(system: SetSystem) -> dict:
    """A :class:`SetSystem` as JSON-safe lists (see module docstring)."""
    return {
        "n": system.n_elements,
        "sets": [
            [sorted(ws.benefit), ws.cost, _label_to_payload(ws.label)]
            for ws in system.sets
        ],
    }


def system_from_payload(payload: dict) -> SetSystem:
    """Rebuild a :class:`SetSystem` sent by :func:`system_to_payload`."""
    try:
        n_elements = int(payload["n"])
        raw_sets = payload["sets"]
        benefits = [entry[0] for entry in raw_sets]
        costs = [entry[1] for entry in raw_sets]
        labels = [_label_from_payload(entry[2]) for entry in raw_sets]
    except (KeyError, TypeError, IndexError) as error:
        raise ProtocolError(
            f"malformed set-system payload: {error!r}"
        ) from error
    return SetSystem.from_iterables(n_elements, benefits, costs, labels=labels)


#: Parent-side cache: serializing a big system once per *request* would
#: dominate `scwsc batch` fan-out, but systems are immutable, so the
#: payload and its fingerprint are computed once per system. Weak keys:
#: dropping the system drops the cached payload.
_PAYLOAD_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def system_payload_and_fingerprint(system: SetSystem) -> tuple[dict, str]:
    """The (cached) wire payload of a system plus its content fingerprint.

    The fingerprint is the SHA-256 of the canonical (sorted-keys,
    compact) JSON encoding of the payload, so two systems fingerprint
    equal exactly when their wire forms are identical — same universe,
    same benefit sets, same costs, same label reprs/sort keys.
    """
    try:
        cached = _PAYLOAD_CACHE.get(system)
    except TypeError:  # unhashable/unweakrefable stand-in: build fresh
        cached = None
    if cached is not None:
        return cached
    payload = system_to_payload(system)
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    cached = (payload, hashlib.sha256(body.encode("utf-8")).hexdigest())
    try:
        _PAYLOAD_CACHE[system] = cached
    except TypeError:  # pragma: no cover - stand-in objects only
        pass
    return cached


#: Worker-side cache: most recently deserialized systems, keyed by the
#: supervisor's fingerprint. `scwsc batch` sends every request of a run
#: against the same system, so all but the first skip the
#: ``from_iterables`` re-parse (and share the per-system solver caches:
#: mask table, owners index, canonical keys). Bounded so long-lived
#: workers under ``--memory-limit`` don't accumulate dead systems.
SYSTEM_CACHE_SIZE = 4

_SYSTEM_CACHE: "OrderedDict[str, SetSystem]" = OrderedDict()


def _system_from_payload_cached(
    payload: dict, fingerprint: str | None
) -> SetSystem:
    """LRU-cached deserialization; plain rebuild without a fingerprint.

    The fingerprint is trusted — the supervisor computed it from the
    exact payload it framed — so a hit skips even reading the payload.
    """
    if fingerprint is None:
        return system_from_payload(payload)
    system = _SYSTEM_CACHE.get(fingerprint)
    if system is not None:
        _SYSTEM_CACHE.move_to_end(fingerprint)
        return system
    system = system_from_payload(payload)
    _SYSTEM_CACHE[fingerprint] = system
    while len(_SYSTEM_CACHE) > SYSTEM_CACHE_SIZE:
        _SYSTEM_CACHE.popitem(last=False)
    return system


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass
class SolveRequest:
    """One unit of pool work.

    ``solver`` is either ``"resilient"`` (run the fallback chain via
    :func:`repro.resilience.resilient_solve`) or the name of a single
    solver known to the worker (``cwsc``, ``cmc``, ``cmc_epsilon``,
    ``exact``, ``lp_rounding``, ``universal``, ``greedy_partial``) —
    the latter is what experiment grids use so pool cells match their
    sequential counterparts exactly.

    ``timeout`` is the *cooperative* budget handed to the solver. The
    supervisor independently enforces ``timeout`` plus its grace period
    with SIGKILL, which is what makes the limit hard.
    """

    system: SetSystem
    k: int
    s_hat: float
    solver: str = "resilient"
    chain: tuple[str, ...] | None = None
    timeout: float | None = None
    stage_options: dict | None = None
    options: dict | None = None
    seed: int = 0
    tag: str | None = None
    #: Ask the worker to capture its solver spans and ship them home in
    #: the result frame. The supervisor also forces this on whenever the
    #: parent process has a tracer configured.
    trace: bool = False
    #: W3C ``traceparent`` of the originating request, when one exists.
    #: Workers bind it as their current trace context so captured spans
    #: (including shard-session hops) replay under the request's trace
    #: id instead of a synthetic per-request prefix.
    traceparent: str | None = None


def encode_request(request: SolveRequest, request_id: int) -> dict:
    """The ``solve`` frame for one request.

    The system payload is cached per system
    (:func:`system_payload_and_fingerprint`) and travels with its
    ``system_fp`` fingerprint so workers can skip re-parsing repeats —
    requeues and batch runs re-encode cheaply and deserialize once.
    """
    payload, fingerprint = system_payload_and_fingerprint(request.system)
    return {
        "kind": "solve",
        "id": request_id,
        "solver": request.solver,
        "system": payload,
        "system_fp": fingerprint,
        "k": request.k,
        "s_hat": request.s_hat,
        "chain": list(request.chain) if request.chain is not None else None,
        "timeout": request.timeout,
        "stage_options": request.stage_options or {},
        "options": request.options or {},
        "seed": request.seed,
        "trace": request.trace,
        "traceparent": request.traceparent,
    }


def request_from_payload(payload: dict) -> tuple[int, SolveRequest]:
    """Decode a ``solve`` frame on the worker side."""
    try:
        request_id = int(payload["id"])
        chain = payload.get("chain")
        fingerprint = payload.get("system_fp")
        request = SolveRequest(
            system=_system_from_payload_cached(
                payload["system"],
                fingerprint if isinstance(fingerprint, str) else None,
            ),
            k=int(payload["k"]),
            s_hat=float(payload["s_hat"]),
            solver=str(payload.get("solver", "resilient")),
            chain=tuple(chain) if chain is not None else None,
            timeout=payload.get("timeout"),
            stage_options=dict(payload.get("stage_options") or {}),
            options=dict(payload.get("options") or {}),
            seed=int(payload.get("seed", 0)),
            trace=bool(payload.get("trace", False)),
            traceparent=(
                str(payload["traceparent"])
                if payload.get("traceparent")
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed solve request: {error!r}"
        ) from error
    return request_id, request
