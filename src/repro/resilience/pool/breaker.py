"""Per-solver circuit breakers for the worker pool.

A worker that keeps dying under the same algorithm — segfaulting LP
backend, exact search that always blows its rlimit on this workload —
should not get to kill a worker per request for the rest of a
thousand-cell sweep. Each solver/stage name gets a breaker with the
classic three states:

* **closed** — healthy; failures are counted, successes reset the count.
* **open** — ``failure_threshold`` *consecutive* failures tripped it;
  for ``cooldown`` seconds the supervisor routes chains around the
  stage (reusing the fallback-chain semantics: the remaining stages
  simply move up, ``universal`` is never removed).
* **half-open** — the cooldown elapsed; exactly one probe request may
  include the stage again. Success closes the breaker, failure re-opens
  it for another cooldown.

The clock is injectable so tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ValidationError

__all__ = ["BreakerBoard", "CircuitBreaker", "TransitionHook"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


#: Signature of the transition hook: ``(breaker_name, old_state, new_state)``.
TransitionHook = Callable[[str, str, str], None]


class CircuitBreaker:
    """Failure-rate gate for one solver/stage name.

    ``on_transition`` (if given) fires on *every* state change with
    ``(name, old_state, new_state)`` — including the lazy
    ``open -> half_open`` advance inside the :attr:`state` property, so
    an event stream sees the full closed → open → half_open → … history
    in order.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionHook | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValidationError(f"cooldown must be >= 0, got {cooldown}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_outstanding = False
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(self.name, old, new_state)

    @property
    def state(self) -> str:
        """Current state, advancing ``open -> half_open`` on cooldown."""
        if self._state == OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition(HALF_OPEN)
                self._probe_outstanding = False
        return self._state

    def allow(self) -> bool:
        """Whether a new request may include this stage right now.

        In ``half_open`` only the first caller gets ``True`` (the probe);
        everyone else keeps routing around until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def record_success(self) -> None:
        self.total_successes += 1
        self._consecutive_failures = 0
        self._transition(CLOSED)
        self._opened_at = None
        self._probe_outstanding = False

    def record_failure(self) -> None:
        self.total_failures += 1
        self._consecutive_failures += 1
        state = self.state
        tripped = (
            state == HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        )
        if tripped and state != OPEN:
            self._transition(OPEN)
            self._opened_at = self._clock()
            self._probe_outstanding = False
            self.times_opened += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
        }


class BreakerBoard:
    """The pool's breakers, one per stage/solver name, created lazily."""

    #: Stages that must never be routed around: ``universal`` is the
    #: feasibility guarantee itself.
    ALWAYS_ALLOWED = frozenset({"universal"})

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionHook | None = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        found = self._breakers.get(name)
        if found is None:
            found = CircuitBreaker(
                name,
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self._clock,
                on_transition=self._on_transition,
            )
            self._breakers[name] = found
        return found

    def filter_chain(
        self, chain: tuple[str, ...]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Split a chain into (stages to run, stages routed around).

        If the breakers would remove *every* stage, the original chain is
        returned untouched — running a probably-broken solver beats
        sending a request guaranteed to do nothing.
        """
        allowed: list[str] = []
        routed: list[str] = []
        for name in chain:
            if name in self.ALWAYS_ALLOWED or self.breaker(name).allow():
                allowed.append(name)
            else:
                routed.append(name)
        if not allowed:
            return tuple(chain), ()
        return tuple(allowed), tuple(routed)

    def record_failure(self, name: str | None) -> None:
        if name and name not in self.ALWAYS_ALLOWED:
            self.breaker(name).record_failure()

    def record_success(self, name: str | None) -> None:
        if name and name not in self.ALWAYS_ALLOWED:
            self.breaker(name).record_success()

    def snapshot(self) -> dict:
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self._breakers.items())
        }
