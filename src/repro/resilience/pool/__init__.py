"""Supervised process-isolated solver pool.

Layers, bottom up:

* :mod:`.protocol` — length-prefixed JSON frames, label/system
  serialization, :class:`SolveRequest`;
* :mod:`.breaker` — per-solver circuit breakers and the
  :class:`BreakerBoard` used to route chains around broken stages;
* :mod:`.worker` — the child-process entry point
  (``python -m repro.resilience.pool.worker``);
* :mod:`.supervisor` — :class:`SolverPool` (spawn, dispatch, hard
  timeouts, requeue, verify) and :func:`run_isolated`, the
  pool-of-one behind ``resilient_solve(isolation="process")``.

See ``docs/RESILIENCE.md`` for the operations runbook.
"""

from repro.resilience.pool.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.pool.protocol import SolveRequest
from repro.resilience.pool.supervisor import (
    PoolConfig,
    PoolResult,
    SolverPool,
    run_isolated,
)

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "PoolConfig",
    "PoolResult",
    "SolveRequest",
    "SolverPool",
    "run_isolated",
]
