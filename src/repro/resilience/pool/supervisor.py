"""The supervised solver pool: hard isolation for untrusted solves.

PR 1's `resilient_solve` degrades gracefully *inside* one process, but
cooperative deadlines cannot stop non-cooperative code: a runaway exact
search, a C extension that never returns, a lattice that eats all RAM.
This module provides the OS-level layer: requests execute in child
worker processes (:mod:`.worker`) and the supervisor enforces what the
children cannot be trusted to —

* **hard wall-clock timeouts**: a worker still busy past its request's
  cooperative budget plus ``grace`` is SIGKILLed;
* **memory guards**: workers run under ``RLIMIT_AS`` headroom
  (``memory_limit_mb``), so a memory hog dies alone;
* **supervision**: worker death (crash, OOM kill, hang, chaos SIGKILL)
  is detected via pipe EOF / process exit, the worker is respawned, and
  the in-flight request is requeued under a bounded retry budget;
* **circuit breakers** (:mod:`.breaker`): repeated failures blamed on
  one solver open its breaker and subsequent chains are routed around
  it, reusing the fallback-chain semantics;
* **verified results**: every answer a worker returns is independently
  re-verified against the parent's own copy of the set system before it
  is accepted — a lying or IPC-corrupted result is requeued, not
  returned.

When a request exhausts its retry budget the supervisor falls back to
the paper's default solution (`universal_result`) computed in-parent, so
on any system satisfying the full-coverage assumption the pool still
returns a feasible, verified answer whose provenance names every
failure along the way.
"""

from __future__ import annotations

import os
import selectors
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.fallbacks import universal_result
from repro.core.result import CoverResult, result_from_dict
from repro.core.validate import verify_result
from repro.errors import (
    InfeasibleError,
    ProtocolError,
    ReproError,
    ValidationError,
)
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.resilience import faults
from repro.resilience.pool.breaker import BreakerBoard
from repro.resilience.pool.protocol import (
    FrameReader,
    SolveRequest,
    encode_request,
    write_frame,
)

__all__ = [
    "PoolConfig",
    "PoolResult",
    "SolverPool",
    "run_isolated",
    "spawn_worker_process",
]

logger = get_logger(__name__)


def spawn_worker_process(
    index: int,
    memory_limit_mb: int | None = None,
    worker_env: dict | None = None,
) -> subprocess.Popen:
    """Spawn one pool worker speaking the frame protocol on its pipes.

    Shared by :class:`SolverPool` and the universe-sharded sessions
    (:mod:`repro.resilience.pool.sharded`), so every worker gets the
    same import-path guarantee and environment-overlay semantics.
    """
    command = [
        sys.executable,
        "-m",
        "repro.resilience.pool.worker",
        "--worker-id",
        str(index),
    ]
    if memory_limit_mb is not None:
        command += ["--memory-limit-mb", str(memory_limit_mb)]
    env = dict(os.environ)
    # Guarantee the child can import repro no matter the caller's cwd.
    src_root = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    for key, value in (worker_env or {}).items():
        if value is None:
            env.pop(key, None)
        else:
            env[key] = str(value)
    return subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=None,  # operator-visible
        env=env,
        bufsize=0,
    )

#: Error types in worker responses that are worth another attempt
#: (environment-dependent), vs. deterministic outcomes that are not.
_RETRYABLE_ERRORS = frozenset(
    {"TransientSolverError", "MemoryError", "ProtocolError"}
)
_DETERMINISTIC_ERRORS = frozenset(
    {"InfeasibleError", "DeadlineExceeded", "PatternSpaceError"}
)
#: Worker-reported stage statuses that count as breaker failures.
_STAGE_FAILURE_STATUSES = frozenset(
    {"timeout", "error", "transient_exhausted", "rejected"}
)

#: Delay between a chaos-scheduled dispatch and its injected SIGKILL,
#: long enough for the worker to be genuinely mid-solve.
_CHAOS_KILL_DELAY = 0.05

#: Under absolute deadlines, a request whose remaining budget is below
#: this is not worth a dispatch round-trip; it goes straight to the
#: parent-side fallback.
_MIN_DISPATCH_SLICE = 0.02


@dataclass
class PoolConfig:
    """Tuning for one :class:`SolverPool`.

    ``grace`` is the hard-kill slack: a worker gets the request's
    cooperative ``timeout`` plus this many seconds before SIGKILL.
    ``request_timeout`` supplies a cooperative budget for requests that
    do not carry their own; when both are ``None`` there is no hard
    deadline (hangs then last until the caller gives up — set one).
    ``max_requeues`` bounds *extra* attempts per request after its
    first. ``worker_env`` entries overlay the inherited environment
    (``None`` values remove keys) — chiefly for ``REPRO_CHAOS`` /
    ``REPRO_DEBUG_HANG``.

    With ``absolute_deadlines`` a request's ``timeout`` is an
    *end-to-end* budget starting when the request enters the pool:
    queue wait and requeues all burn the same clock, each dispatch gets
    only the remaining slice, and a request whose budget is spent skips
    the worker entirely and degrades to the parent-side fallback. This
    is what `scwsc serve` uses so a client's deadline bounds its total
    latency; the default (per-attempt budgets) preserves the batch/grid
    semantics of earlier releases.
    """

    workers: int = 2
    memory_limit_mb: int | None = None
    request_timeout: float | None = None
    grace: float = 2.0
    max_requeues: int = 2
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    worker_env: dict | None = None
    spawn_retry_limit: int = 3
    absolute_deadlines: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.max_requeues < 0:
            raise ValidationError(
                f"max_requeues must be >= 0, got {self.max_requeues}"
            )
        if self.grace < 0:
            raise ValidationError(f"grace must be >= 0, got {self.grace}")
        if self.memory_limit_mb is not None and self.memory_limit_mb < 1:
            raise ValidationError(
                f"memory_limit_mb must be >= 1, got {self.memory_limit_mb}"
            )


@dataclass
class PoolResult:
    """Outcome of one pool request.

    ``status`` is ``"ok"`` (a worker's verified answer), ``"fallback"``
    (retry budget exhausted; the parent's universal-set answer), or
    ``"failed"`` (no feasible answer exists / bad request). ``result``
    is ``None`` only for ``"failed"`` requests with nothing to attach.
    The same ``provenance`` dict is stored in
    ``result.params["pool"]``.
    """

    request_id: int
    tag: str | None
    status: str
    result: CoverResult | None
    provenance: dict


class _Pending:
    """Supervisor-side state for one request."""

    __slots__ = (
        "request_id", "request", "effective_timeout", "deadline_at",
        "dispatches", "attempts", "routed_around", "done",
        "trace_ctx", "enqueued_at", "queue_seconds", "solve_seconds",
        "requeue_seconds", "last_dispatched_at", "last_attempt_end",
    )

    def __init__(self, request_id: int, request: SolveRequest,
                 effective_timeout: float | None,
                 deadline_at: float | None = None) -> None:
        self.request_id = request_id
        self.request = request
        self.effective_timeout = effective_timeout
        #: Absolute monotonic deadline (absolute_deadlines mode only).
        self.deadline_at = deadline_at
        self.dispatches = 0
        self.attempts: list[dict] = []
        self.routed_around: list[str] = []
        self.done = False
        #: The originating request's trace context, when the caller sent
        #: a ``traceparent`` — worker spans replay under its trace id and
        #: every pool event for this request carries it.
        self.trace_ctx = obs_trace.parse_traceparent(request.traceparent)
        self.enqueued_at = time.monotonic()
        #: Deadline-budget breakdown: wait before the first dispatch,
        #: cumulative worker-side time, and wait between attempts.
        self.queue_seconds = 0.0
        self.solve_seconds = 0.0
        self.requeue_seconds = 0.0
        self.last_dispatched_at: float | None = None
        self.last_attempt_end: float | None = None

    @property
    def trace_id(self) -> str | None:
        return self.trace_ctx.trace_id if self.trace_ctx else None

    def note_dispatched(self, now: float) -> None:
        if self.last_attempt_end is not None:
            self.requeue_seconds += now - self.last_attempt_end
        elif self.last_dispatched_at is None:
            self.queue_seconds = now - self.enqueued_at
        self.last_dispatched_at = now

    def note_attempt_end(self, now: float) -> None:
        if self.last_dispatched_at is not None and (
            self.last_attempt_end is None
            or self.last_attempt_end < self.last_dispatched_at
        ):
            self.solve_seconds += now - self.last_dispatched_at
            self.last_attempt_end = now

    def provenance(self) -> dict:
        provenance = {
            "tag": self.request.tag,
            "attempts": list(self.attempts),
            "requeues": max(0, self.dispatches - 1),
            "timings": {
                "queue_seconds": round(self.queue_seconds, 6),
                "solve_seconds": round(self.solve_seconds, 6),
                "requeue_seconds": round(self.requeue_seconds, 6),
            },
        }
        if self.trace_ctx is not None:
            provenance["trace_id"] = self.trace_ctx.trace_id
        return provenance


class _Worker:
    """One supervised child process."""

    __slots__ = (
        "index", "proc", "reader", "pending", "dispatched_at", "kill_at",
        "chaos_kill_at", "last_stage", "ready", "completed",
    )

    def __init__(self, index: int, proc: subprocess.Popen) -> None:
        self.index = index
        self.proc = proc
        self.reader = FrameReader()
        self.pending: _Pending | None = None
        self.dispatched_at: float | None = None
        self.kill_at: float | None = None
        self.chaos_kill_at: float | None = None
        self.last_stage: str | None = None
        self.ready = False
        self.completed = 0

    @property
    def busy(self) -> bool:
        return self.pending is not None

    @property
    def pid(self) -> int:
        return self.proc.pid


class SolverPool:
    """Run :class:`SolveRequest`s across supervised worker processes.

    Use as a context manager::

        with SolverPool(PoolConfig(workers=4, memory_limit_mb=512)) as pool:
            results = pool.run(requests)

    ``run`` preserves input order in its output and may be called
    repeatedly; workers persist between calls.
    """

    def __init__(self, config: PoolConfig | None = None) -> None:
        self.config = config or PoolConfig()
        self.board = BreakerBoard(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            on_transition=self._breaker_transition,
        )
        self._workers: list[_Worker] = []
        self._selector = selectors.DefaultSelector()
        self._queue: deque[_Pending] = deque()
        self._completed: list[PoolResult] = []
        self._next_id = 0
        self._spawn_deaths = 0
        self._closed = False
        self._draining = False
        self._on_result: Callable[[PoolResult], None] | None = None

    @staticmethod
    def _breaker_transition(name: str, old: str, new: str) -> None:
        logger.info("breaker %r: %s -> %s", name, old, new)
        obs_trace.event("breaker_transition", breaker=name, old=old, new=new)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "SolverPool":
        self._ensure_workers()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            self._shutdown_worker(worker)
        self._workers.clear()
        self._selector.close()

    def _shutdown_worker(self, worker: _Worker) -> None:
        try:
            self._selector.unregister(worker.proc.stdout)
        except (KeyError, ValueError):
            pass
        if worker.proc.poll() is None:
            try:
                write_frame(worker.proc.stdin, {"kind": "shutdown"})
            except (OSError, ValueError):
                pass
        for stream in (worker.proc.stdin, worker.proc.stdout):
            try:
                stream.close()
            except OSError:
                pass
        try:
            worker.proc.wait(timeout=1.0)
        except subprocess.TimeoutExpired:
            worker.proc.kill()
            worker.proc.wait()

    def _spawn(self, index: int) -> _Worker:
        proc = spawn_worker_process(
            index,
            memory_limit_mb=self.config.memory_limit_mb,
            worker_env=self.config.worker_env,
        )
        worker = _Worker(index, proc)
        self._selector.register(proc.stdout, selectors.EVENT_READ, worker)
        obs_trace.event("worker_spawn", worker=index, pid=proc.pid)
        return worker

    def _ensure_workers(self) -> None:
        while len(self._workers) < self.config.workers:
            self._workers.append(self._spawn(len(self._workers)))

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker in place; idempotent per worker."""
        try:
            slot = self._workers.index(worker)
        except ValueError:
            return  # already replaced (e.g. two frames blamed one worker)
        try:
            self._selector.unregister(worker.proc.stdout)
        except (KeyError, ValueError):
            pass
        for stream in (worker.proc.stdin, worker.proc.stdout):
            try:
                stream.close()
            except OSError:
                pass
        if worker.proc.poll() is None:
            worker.proc.kill()
        worker.proc.wait()
        if not worker.ready and not worker.completed:
            self._spawn_deaths += 1
            limit = self.config.workers * self.config.spawn_retry_limit
            if self._spawn_deaths > limit:
                raise ReproError(
                    "pool workers keep dying before serving any request "
                    f"({self._spawn_deaths} spawn deaths); see worker "
                    "stderr for the cause"
                )
        self._workers[slot] = self._spawn(worker.index)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[SolveRequest],
        on_result: Callable[[PoolResult], None] | None = None,
    ) -> list[PoolResult]:
        """Execute ``requests``; returns results in request order.

        ``on_result`` fires as each request finishes (completion order),
        which lets callers stream output (``scwsc batch``) and checkpoint
        incrementally.
        """
        self._on_result = on_result
        try:
            ids = [self.submit(request) for request in requests]
            outstanding = set(ids)
            collected: dict[int, PoolResult] = {}
            while outstanding:
                for pool_result in self.poll():
                    collected[pool_result.request_id] = pool_result
                    outstanding.discard(pool_result.request_id)
        finally:
            self._on_result = None
        return [collected[request_id] for request_id in ids]

    def solve(self, request: SolveRequest) -> PoolResult:
        """Run one request (convenience wrapper over :meth:`run`)."""
        return self.run([request])[0]

    def submit(self, request: SolveRequest) -> int:
        """Enqueue one request; returns its pool request id.

        The serving entry point: callers that cannot block (the
        ``scwsc serve`` dispatcher) submit work and collect finished
        :class:`PoolResult`\\ s from :meth:`poll` as they complete.
        """
        if self._closed:
            raise ValidationError("pool is closed")
        if self._draining:
            raise ValidationError("pool is draining; no new work accepted")
        self._ensure_workers()
        pending = self._prepare(request)
        self._queue.append(pending)
        return pending.request_id

    def poll(self, timeout: float = 0.25) -> list[PoolResult]:
        """One supervision step; returns requests that finished during it.

        Dispatches queued work to free workers, waits up to ``timeout``
        seconds for worker frames, enforces hard deadlines and reaps
        dead workers. Safe to call with nothing queued (used by
        :meth:`warm`). Results are returned in completion order exactly
        once; ``on_result`` callbacks passed to :meth:`run` fire from
        inside this method.
        """
        if self._closed:
            raise ValidationError("pool is closed")
        self._dispatch_all()
        select_timeout = min(max(timeout, 0.0), self._select_timeout())
        for key, _ in self._selector.select(select_timeout):
            self._on_readable(key.data)
        self._enforce_deadlines()
        self._reap_silent_deaths()
        completed = self._completed
        self._completed = []
        return completed

    def warm(self, timeout: float = 30.0) -> bool:
        """Spawn workers and block until all have sent ``ready`` frames.

        The daemon's warm-start hook: ``/readyz`` should not report
        ready while workers are still importing. Returns ``False`` when
        the timeout elapsed first (workers may still warm up later);
        raises :class:`ReproError` if workers keep dying at startup,
        exactly as dispatch-time spawning would.
        """
        self._ensure_workers()
        deadline = time.monotonic() + timeout
        while not all(worker.ready for worker in self._workers):
            if time.monotonic() >= deadline:
                return False
            self.poll(0.05)
        return True

    def drain(self, timeout: float | None = None) -> list[PoolResult]:
        """Finish queued and in-flight work, accepting nothing new.

        The graceful-shutdown hook: after ``drain`` returns, every
        request submitted before it has either completed (results are
        returned here, and through ``poll``'s usual ``on_result`` path)
        or — when ``timeout`` elapsed first — remains in flight for the
        caller to abandon via :meth:`close`. Hard deadlines keep being
        enforced throughout, so a drain bounded by request timeouts
        terminates. The pool stays draining afterwards; :meth:`close`
        is the expected next call.
        """
        self._draining = True
        results: list[PoolResult] = []
        give_up_at = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while self._queue or any(w.busy for w in self._workers):
            if give_up_at is not None and time.monotonic() >= give_up_at:
                break
            results.extend(self.poll(0.1))
        results.extend(self._completed)
        self._completed = []
        return results

    def breaker_snapshot(self) -> dict:
        return self.board.snapshot()

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet dispatched to a worker."""
        return len(self._queue)

    @property
    def busy_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.busy)

    @property
    def ready_workers(self) -> int:
        """Workers that have finished importing and sent ``ready``."""
        return sum(1 for worker in self._workers if worker.ready)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _prepare(self, request: SolveRequest) -> _Pending:
        effective = (
            request.timeout
            if request.timeout is not None
            else self.config.request_timeout
        )
        deadline_at = (
            time.monotonic() + effective
            if self.config.absolute_deadlines and effective is not None
            else None
        )
        pending = _Pending(self._next_id, request, effective, deadline_at)
        self._next_id += 1
        return pending

    def _dispatch_all(self) -> None:
        for worker in list(self._workers):
            if not self._queue:
                return
            if worker.busy or worker.proc.poll() is not None:
                continue
            self._dispatch(worker, self._queue.popleft())

    def _dispatch(self, worker: _Worker, pending: _Pending) -> None:
        request = pending.request
        attempt_timeout = pending.effective_timeout
        if pending.deadline_at is not None:
            # Absolute deadline: this attempt gets only what is left of
            # the end-to-end budget. A spent budget skips the worker and
            # degrades immediately — the serve path's guarantee that
            # queue wait and requeues cannot stretch a client's deadline.
            attempt_timeout = pending.deadline_at - time.monotonic()
            if attempt_timeout <= _MIN_DISPATCH_SLICE:
                pending.attempts.append(
                    {
                        "attempt": pending.dispatches,
                        "worker": None,
                        "pid": None,
                        "outcome": "deadline-exhausted",
                        "detail": "end-to-end budget spent before dispatch",
                        "stage": None,
                    }
                )
                self._finalize_fallback(pending, None)
                return
        payload = encode_request(request, pending.request_id)
        payload["timeout"] = attempt_timeout
        if obs_trace.enabled():
            # The parent has a tracer, so ask the worker to capture its
            # solver spans; they come home in the result frame and are
            # replayed under this request's id (see _complete).
            payload["trace"] = True
        if request.solver == "resilient":
            from repro.resilience.chain import DEFAULT_CHAIN

            chain = tuple(request.chain or DEFAULT_CHAIN)
            allowed, routed = self.board.filter_chain(chain)
            payload["chain"] = list(allowed)
            if routed:
                pending.routed_around = sorted(set(routed))
        try:
            write_frame(worker.proc.stdin, payload)
        except (OSError, ValueError):
            # Worker died before it could accept work: not the request's
            # fault, so no attempt is charged.
            self._queue.appendleft(pending)
            self._respawn(worker)
            return
        pending.dispatches += 1
        worker.pending = pending
        worker.dispatched_at = time.monotonic()
        pending.note_dispatched(worker.dispatched_at)
        worker.last_stage = None
        if pending.deadline_at is not None:
            worker.kill_at = pending.deadline_at + self.config.grace
        else:
            worker.kill_at = (
                worker.dispatched_at + pending.effective_timeout
                + self.config.grace
                if pending.effective_timeout is not None
                else None
            )
        worker.chaos_kill_at = None
        injector = faults.active()
        if injector is not None and injector.worker_kill_scheduled():
            worker.chaos_kill_at = worker.dispatched_at + _CHAOS_KILL_DELAY
        if obs_trace.recording():
            obs_trace.event(
                "dispatch",
                request_id=pending.request_id,
                trace_id=pending.trace_id,
                worker=worker.index,
                pid=worker.pid,
                attempt=pending.dispatches,
                solver=request.solver,
                timeout=attempt_timeout,
                routed_around=list(pending.routed_around),
            )

    def _select_timeout(self) -> float:
        now = time.monotonic()
        horizon = 0.25
        for worker in self._workers:
            for at in (worker.kill_at, worker.chaos_kill_at):
                if at is not None:
                    horizon = min(horizon, at - now)
        return max(0.01, horizon)

    def _on_readable(self, worker: _Worker) -> None:
        try:
            data = os.read(worker.proc.stdout.fileno(), 1 << 16)
        except OSError:
            data = b""
        if not data:
            self._worker_died(worker)
            return
        try:
            frames = worker.reader.feed(data)
        except ProtocolError as error:
            self._worker_failed(
                worker, "ipc-error", f"unreadable frame stream: {error}"
            )
            return
        for frame in frames:
            self._handle_frame(worker, frame)

    def _handle_frame(self, worker: _Worker, frame: dict) -> None:
        kind = frame.get("kind")
        if kind == "ready":
            worker.ready = True
            self._spawn_deaths = 0
            obs_trace.event(
                "worker_ready", worker=worker.index, pid=worker.pid
            )
        elif kind == "stage":
            worker.last_stage = frame.get("stage")
        elif kind == "result":
            self._complete(worker, frame)
        elif kind == "pong":
            pass
        else:
            self._worker_failed(
                worker, "ipc-error", f"unexpected frame kind {kind!r}"
            )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if not worker.busy:
                continue
            if worker.chaos_kill_at is not None and now >= worker.chaos_kill_at:
                obs_trace.event(
                    "chaos_kill",
                    worker=worker.index,
                    pid=worker.pid,
                    request_id=worker.pending.request_id,
                    trace_id=worker.pending.trace_id,
                )
                self._hard_kill(worker)
                self._worker_failed(
                    worker,
                    "killed",
                    "SIGKILL injected by the chaos schedule mid-solve",
                )
            elif worker.kill_at is not None and now >= worker.kill_at:
                logger.warning(
                    "pool worker %d (pid %d) blew its hard deadline "
                    "(timeout %ss + grace %gs); SIGKILL",
                    worker.index, worker.pid, pendings(worker),
                    self.config.grace,
                )
                obs_trace.event(
                    "hard_timeout",
                    worker=worker.index,
                    pid=worker.pid,
                    request_id=worker.pending.request_id,
                    trace_id=worker.pending.trace_id,
                    timeout=worker.pending.effective_timeout,
                    grace=self.config.grace,
                )
                self._hard_kill(worker)
                self._worker_failed(
                    worker,
                    "hard-timeout",
                    f"no answer within timeout "
                    f"{pendings(worker)}s + grace {self.config.grace}s; "
                    "worker SIGKILLed",
                )

    def _reap_silent_deaths(self) -> None:
        # EOF normally reports death, but a worker whose stdout was
        # already drained can exit without a readable event.
        for worker in list(self._workers):
            if worker.proc.poll() is not None and worker in self._workers:
                self._worker_died(worker)

    def _hard_kill(self, worker: _Worker) -> None:
        if worker.proc.poll() is None:
            try:
                worker.proc.send_signal(signal.SIGKILL)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Failure and completion handling
    # ------------------------------------------------------------------
    def _death_detail(self, worker: _Worker) -> str:
        code = worker.proc.poll()
        if code is None:
            return "worker pipe closed while the process is still running"
        if code < 0:
            signame = signal.Signals(-code).name if -code in [
                s.value for s in signal.Signals
            ] else str(-code)
            hint = " (possible OOM kill)" if code == -signal.SIGKILL else ""
            return f"worker died with signal {signame}{hint}"
        return f"worker exited with status {code}"

    def _worker_died(self, worker: _Worker) -> None:
        detail = self._death_detail(worker)
        pending = worker.pending
        logger.warning(
            "pool worker %d (pid %d): %s%s",
            worker.index, worker.pid, detail,
            (
                f" (request {pending.request_id} in flight)"
                if pending is not None
                else ""
            ),
        )
        obs_trace.event(
            "worker_death",
            worker=worker.index,
            pid=worker.pid,
            request_id=pending.request_id if pending is not None else None,
            trace_id=pending.trace_id if pending is not None else None,
            detail=detail,
        )
        self._worker_failed(worker, "worker-died", detail)

    def _worker_failed(self, worker: _Worker, outcome: str, detail: str
                       ) -> None:
        """A worker is unusable; requeue its request and respawn it."""
        pending = worker.pending
        stage = worker.last_stage
        worker.pending = None
        worker.kill_at = None
        worker.chaos_kill_at = None
        self._respawn(worker)
        if pending is None or pending.done:
            return
        pending.note_attempt_end(time.monotonic())
        self._record_failure(
            pending, worker, outcome, detail,
            stage or self._blame_default(pending),
        )

    def _blame_default(self, pending: _Pending) -> str | None:
        if pending.request.solver != "resilient":
            return pending.request.solver
        chain = pending.request.chain
        return chain[0] if chain else "exact"

    def _record_failure(
        self,
        pending: _Pending,
        worker: _Worker | None,
        outcome: str,
        detail: str,
        blame: str | None,
        partial: CoverResult | None = None,
    ) -> None:
        pending.attempts.append(
            {
                "attempt": pending.dispatches,
                "worker": worker.index if worker is not None else None,
                "pid": worker.pid if worker is not None else None,
                "outcome": outcome,
                "detail": detail,
                "stage": blame,
            }
        )
        self.board.record_failure(blame)
        if pending.dispatches <= self.config.max_requeues:
            obs_trace.event(
                "requeue",
                request_id=pending.request_id,
                trace_id=pending.trace_id,
                attempt=pending.dispatches,
                outcome=outcome,
                blame=blame,
            )
            self._queue.append(pending)
        else:
            self._finalize_fallback(pending, partial)

    def _complete(self, worker: _Worker, frame: dict) -> None:
        pending = worker.pending
        worker.pending = None
        worker.kill_at = None
        worker.chaos_kill_at = None
        worker.completed += 1
        if pending is None or pending.done:
            return
        pending.note_attempt_end(time.monotonic())
        ring = frame.get("flightrec")
        if isinstance(ring, list) and ring:
            # The worker's own flight-recorder ring rides every result
            # frame; keep the latest per worker so a later SIGKILL still
            # leaves its last words in postmortem bundles.
            from repro.obs import flightrec as obs_flightrec

            recorder = obs_flightrec.get_recorder()
            if recorder is not None:
                recorder.note_worker_ring(worker.index, ring)
        records = frame.get("trace")
        if isinstance(records, list) and records and obs_trace.enabled():
            # Prefix includes the attempt number: a retried request may
            # ship a trace per attempt and span ids must not collide.
            # When the request carried a traceparent, the prefix is its
            # trace id and the worker subtree is re-parented under the
            # caller's span, so the whole request renders as one tree.
            ctx = pending.trace_ctx
            if ctx is not None:
                prefix = f"{ctx.trace_id}.a{pending.dispatches}."
                root_parent = ctx.span_id
            else:
                prefix = f"r{pending.request_id}a{pending.dispatches}."
                root_parent = None
            obs_trace.replay(
                records,
                prefix=prefix,
                root_parent=root_parent,
                request_id=pending.request_id,
                worker=worker.index,
                **({"trace_id": ctx.trace_id} if ctx is not None else {}),
            )
        rss = frame.get("peak_rss_bytes")
        if isinstance(rss, (int, float)) and rss > 0:
            self._note_worker_rss(worker, pending, int(rss))
        if frame.get("id") != pending.request_id:
            self._record_failure(
                pending, worker, "ipc-error",
                f"result frame for id {frame.get('id')!r}, expected "
                f"{pending.request_id}",
                worker.last_stage or self._blame_default(pending),
            )
            return
        if frame.get("status") == "ok":
            self._complete_ok(worker, pending, frame)
        else:
            self._complete_error(worker, pending, frame)
        if (
            isinstance(rss, (int, float))
            and rss > 0
            and pending.attempts
            and pending.attempts[-1]["attempt"] == pending.dispatches
        ):
            pending.attempts[-1]["peak_rss_bytes"] = int(rss)

    def _note_worker_rss(
        self, worker: _Worker, pending: _Pending, rss: int
    ) -> None:
        """Record a worker-reported peak RSS: gauge + trace event.

        The gauge keeps the latest value per worker (``ru_maxrss`` is a
        process-lifetime high-water mark, so it only ever rises); the
        attempt record in provenance is attached by :meth:`_complete`
        once the attempt's outcome is known.
        """
        from repro.obs.metrics import get_registry

        get_registry().gauge(
            "scwsc_worker_peak_rss_bytes",
            "Peak resident set size reported by each pool worker",
        ).set(rss, worker=worker.index)
        if obs_trace.recording():
            obs_trace.event(
                "worker_peak_rss",
                request_id=pending.request_id,
                worker=worker.index,
                peak_rss_bytes=rss,
            )

    def _complete_ok(self, worker: _Worker, pending: _Pending, frame: dict
                     ) -> None:
        system = pending.request.system
        resilience = frame.get("resilience")
        try:
            claimed = result_from_dict(frame["result"])
        except (KeyError, TypeError, ValueError) as error:
            self._record_failure(
                pending, worker, "ipc-error",
                f"undecodable result payload: {error!r}",
                worker.last_stage or self._blame_default(pending),
            )
            return
        if any(
            not (0 <= set_id < system.n_sets) for set_id in claimed.set_ids
        ):
            self._record_failure(
                pending, worker, "rejected",
                "result names set ids outside the parent's system",
                worker.last_stage or self._blame_default(pending),
            )
            return
        # Rebuild against the parent's own system: real label objects
        # back in place, worker-claimed numbers kept but re-verified
        # below so a lying or corrupted answer cannot be returned.
        result = CoverResult(
            algorithm=claimed.algorithm,
            set_ids=claimed.set_ids,
            labels=tuple(
                system[set_id].label for set_id in claimed.set_ids
            ),
            total_cost=claimed.total_cost,
            covered=claimed.covered,
            n_elements=claimed.n_elements,
            feasible=claimed.feasible,
            params=dict(claimed.params),
            metrics=claimed.metrics,
        )
        k_bound = None
        coverage_target = None
        if isinstance(resilience, dict):
            k_bound = resilience.get("k_bound")
            coverage_target = resilience.get("coverage_target")
            result.params["resilience"] = resilience
        problems = verify_result(
            system, result, k=k_bound, s_hat=coverage_target
        )
        if problems:
            self._record_failure(
                pending, worker, "rejected",
                "worker answer failed parent-side verification: "
                + "; ".join(problems),
                worker.last_stage or self._blame_default(pending),
            )
            return
        self._credit_breakers(pending, resilience)
        pending.attempts.append(
            {
                "attempt": pending.dispatches,
                "worker": worker.index,
                "pid": worker.pid,
                "outcome": "ok",
                "detail": "",
                "stage": (
                    resilience.get("stage")
                    if isinstance(resilience, dict)
                    else pending.request.solver
                ),
            }
        )
        self._finalize(pending, "ok", result)

    def _credit_breakers(self, pending: _Pending, resilience) -> None:
        if pending.request.solver != "resilient":
            self.board.record_success(pending.request.solver)
            return
        if not isinstance(resilience, dict):
            return
        for record in resilience.get("stages", []):
            stage = record.get("stage")
            status = record.get("status")
            if status == "ok":
                self.board.record_success(stage)
            elif status in _STAGE_FAILURE_STATUSES:
                self.board.record_failure(stage)

    def _complete_error(self, worker: _Worker, pending: _Pending,
                        frame: dict) -> None:
        error_type = str(frame.get("error_type", "Exception"))
        message = str(frame.get("message", ""))
        blame = worker.last_stage or self._blame_default(pending)
        partial = None
        if isinstance(frame.get("partial"), dict):
            try:
                partial = result_from_dict(frame["partial"])
            except (KeyError, TypeError, ValueError):
                partial = None
        if error_type == "ValidationError":
            # Caller bug: deterministic, never retried, no fallback that
            # could mask it.
            pending.attempts.append(
                {
                    "attempt": pending.dispatches,
                    "worker": worker.index,
                    "pid": worker.pid,
                    "outcome": f"error:{error_type}",
                    "detail": message,
                    "stage": blame,
                }
            )
            self._finalize(pending, "failed", None, failure=message)
            return
        if error_type in _DETERMINISTIC_ERRORS:
            if error_type != "InfeasibleError":
                self.board.record_failure(blame)
            pending.attempts.append(
                {
                    "attempt": pending.dispatches,
                    "worker": worker.index,
                    "pid": worker.pid,
                    "outcome": f"error:{error_type}",
                    "detail": message,
                    "stage": blame,
                }
            )
            self._finalize_fallback(pending, partial)
            return
        retryable_note = (
            "" if error_type in _RETRYABLE_ERRORS else " (unclassified)"
        )
        self._record_failure(
            pending, worker, f"error:{error_type}",
            message + retryable_note, blame, partial=partial,
        )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _finalize(self, pending: _Pending, status: str,
                  result: CoverResult | None, failure: str | None = None
                  ) -> None:
        pending.done = True
        provenance = pending.provenance()
        if pending.routed_around:
            provenance["routed_around"] = pending.routed_around
        if failure is not None:
            provenance["failure"] = failure
        if status == "fallback":
            provenance["fallback"] = "parent-universal"
        if result is not None:
            result.params["pool"] = provenance
        pool_result = PoolResult(
            request_id=pending.request_id,
            tag=pending.request.tag,
            status=status,
            result=result,
            provenance=provenance,
        )
        self._completed.append(pool_result)
        obs_trace.event(
            "request_complete",
            request_id=pending.request_id,
            trace_id=pending.trace_id,
            status=status,
            attempts=len(pending.attempts),
        )
        if self._on_result is not None:
            self._on_result(pool_result)

    def _finalize_fallback(self, pending: _Pending,
                           partial: CoverResult | None) -> None:
        """Retry budget spent: answer from the parent, or fail honestly."""
        obs_trace.event(
            "fallback",
            request_id=pending.request_id,
            trace_id=pending.trace_id,
            attempts=len(pending.attempts),
        )
        request = pending.request
        last = pending.attempts[-1] if pending.attempts else {}
        failure = (
            f"{last.get('outcome', 'unknown')}: {last.get('detail', '')}"
        ).strip(": ")
        try:
            result = universal_result(request.system, request.k, request.s_hat)
        except InfeasibleError as error:
            fallback_partial = partial or error.partial
            self._finalize(
                pending, "failed", fallback_partial, failure=failure
            )
            return
        except ValidationError as error:
            self._finalize(pending, "failed", None, failure=str(error))
            return
        problems = verify_result(
            request.system, result, k=request.k, s_hat=request.s_hat
        )
        if problems:  # pragma: no cover - universal_result is trusted
            self._finalize(
                pending, "failed", None,
                failure=failure + "; fallback failed verification: "
                + "; ".join(problems),
            )
            return
        self._finalize(pending, "fallback", result, failure=failure)


def pendings(worker: _Worker) -> str:
    """The timeout of the worker's current request, for log text."""
    pending = worker.pending
    if pending is None or pending.effective_timeout is None:
        return "?"
    return f"{pending.effective_timeout:g}"


def run_isolated(
    system,
    k: int,
    s_hat: float,
    chain: Sequence[str] | None = None,
    timeout: float | None = None,
    memory_limit_mb: int | None = None,
    seed: int = 0,
    stage_options: dict | None = None,
    max_retries: int = 2,
    strict: bool = False,
    exact_node_limit: int | None = None,
    on_failure: str = "partial",
    max_requeues: int = 2,
    grace: float = 2.0,
    worker_env: dict | None = None,
    backend: str | None = None,
    shards: int | None = None,
) -> CoverResult:
    """One process-isolated resilient solve; the pool-of-one convenience.

    Mirrors :func:`repro.resilience.resilient_solve`'s contract (and is
    what its ``isolation="process"`` mode delegates to): returns a
    verified result whose ``params`` carry both the in-worker
    ``resilience`` provenance and the supervisor's ``pool`` provenance.
    ``on_failure`` applies when even the parent-side fallback cannot
    produce a feasible answer. ``backend`` and ``shards`` ride the
    request options into the worker's ``resilient_solve`` — the worker
    becomes the sharding *parent*, fanning its greedy stages out to its
    own shard workers.
    """
    if on_failure not in ("partial", "raise"):
        raise ValidationError(
            f"on_failure must be 'partial' or 'raise', got {on_failure!r}"
        )
    if strict:
        system.validate_strict()
    options: dict = {"max_retries": max_retries, "strict": strict}
    if exact_node_limit is not None:
        options["exact_node_limit"] = exact_node_limit
    if backend is not None:
        options["backend"] = backend
    if shards is not None:
        options["shards"] = shards
    request = SolveRequest(
        system=system,
        k=k,
        s_hat=s_hat,
        solver="resilient",
        chain=tuple(chain) if chain is not None else None,
        timeout=timeout,
        stage_options=stage_options,
        options=options,
        seed=seed,
    )
    config = PoolConfig(
        workers=1,
        memory_limit_mb=memory_limit_mb,
        grace=grace,
        max_requeues=max_requeues,
        worker_env=worker_env,
    )
    with SolverPool(config) as pool:
        outcome = pool.solve(request)
    result = outcome.result
    if result is None:
        from repro.core.result import Metrics, make_result

        result = make_result(
            algorithm="resilient_solve",
            chosen=[],
            labels=[],
            total_cost=0.0,
            covered=0,
            n_elements=system.n_elements,
            feasible=system.required_coverage(s_hat) == 0,
            params={"k": k, "s_hat": s_hat, "pool": outcome.provenance},
            metrics=Metrics(),
        )
    if not result.feasible and on_failure == "raise":
        raise InfeasibleError(
            "run_isolated: no feasible verified answer "
            f"({outcome.provenance.get('failure', 'unknown failure')})",
            partial=result,
        )
    return result
