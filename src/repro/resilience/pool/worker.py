"""Pool worker: one supervised child process executing solve requests.

Run as ``python -m repro.resilience.pool.worker``; the supervisor speaks
the length-prefixed JSON protocol (:mod:`.protocol`) over stdin/stdout.
Design points that matter for robustness:

* **The frame stream owns stdout.** At startup the real stdout fd is
  duplicated for frames and fd 1 is re-pointed at stderr, so a stray
  ``print`` anywhere in the solver stack degrades to log noise instead
  of corrupting the protocol.
* **Memory guard.** ``--memory-limit-mb`` sets ``RLIMIT_AS`` to the
  interpreter's post-import baseline plus the given headroom. A solve
  that allocates past it gets a real ``MemoryError`` (reported as a
  structured failure) or, if allocation happens inside C code that
  cannot recover, the process dies and the supervisor requeues.
* **Hang diagnostics.** With ``REPRO_DEBUG_HANG=1`` a
  :mod:`faulthandler` watchdog is armed for each request's cooperative
  timeout, so a worker that blows its deadline dumps the stuck stack to
  stderr before the supervisor's hard kill lands.
* **Chaos hooks.** ``REPRO_CHAOS`` in the worker's environment drives
  the child-side process faults (self-SIGKILL, hang, memory hog, IPC
  frame corruption) — see :mod:`repro.resilience.faults`.

The worker never lets a request's failure end the process: every
exception that can be caught becomes a structured ``result`` frame with
``status="error"``. Exits happen only on clean ``shutdown``, EOF, an
unrecoverable protocol error on stdin, or the kinds of death (SIGKILL,
OOM) that are precisely the supervisor's job to detect.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from collections import deque

from repro.core.result import CoverResult
from repro.errors import ProtocolError, ReproError
from repro.obs import trace as obs_trace
from repro.obs.log import console_logging
from repro.resilience import faults
from repro.resilience.debug import hang_watchdog
from repro.resilience.pool.protocol import (
    SolveRequest,
    read_frame,
    request_from_payload,
    write_frame,
)

__all__ = ["main", "run_request"]

#: Cap on trace records shipped per result frame: an unexpectedly hot
#: trace must degrade to truncation, not to an oversized frame that the
#: supervisor would treat as worker failure.
_MAX_TRACE_RECORDS = 50_000

#: Worker-side flight-recorder ring: the last few dozen lifecycle events
#: (solve start/stage/end), shipped on *every* result frame. A worker is
#: killed with SIGKILL (hard timeout, chaos, OOM) precisely when it
#: cannot flush anything, so its last words must already be with the
#: supervisor — the cost is ~a few KB per frame. Records use the
#: ``scwsc-trace/1`` event shape so postmortem bundles validate them
#: with the standard schema.
_RING_CAPACITY = 64
_ring: deque = deque(maxlen=_RING_CAPACITY)
_ring_t0 = time.perf_counter()


def _ring_event(name: str, **attrs) -> None:
    _ring.append(
        {
            "type": "event",
            "name": name,
            "t": round(time.perf_counter() - _ring_t0, 6),
            "attrs": attrs,
        }
    )


def _solver_registry() -> dict:
    """Named solvers the worker can run directly (grid cells)."""
    from repro.core.cmc import cmc
    from repro.core.cmc_epsilon import cmc_epsilon
    from repro.core.cwsc import cwsc
    from repro.core.exact import solve_exact
    from repro.core.fallbacks import greedy_partial, universal_result
    from repro.core.lp_rounding import lp_rounding

    return {
        "cwsc": (cwsc, True),
        "cmc": (cmc, True),
        "cmc_epsilon": (cmc_epsilon, True),
        "exact": (solve_exact, True),
        "lp_rounding": (lp_rounding, True),
        "universal": (universal_result, False),
        "greedy_partial": (greedy_partial, False),
    }


def run_request(request: SolveRequest, on_stage=None) -> CoverResult:
    """Execute one request in-process (shared by worker and tests)."""
    options = dict(request.options or {})
    if request.solver == "resilient":
        from repro.resilience.chain import DEFAULT_CHAIN, resilient_solve

        options.pop("on_failure", None)
        return resilient_solve(
            request.system,
            request.k,
            request.s_hat,
            chain=request.chain or DEFAULT_CHAIN,
            timeout=request.timeout,
            seed=request.seed,
            stage_options=request.stage_options or {},
            on_stage=on_stage,
            on_failure="partial",
            **options,
        )
    registry = _solver_registry()
    if request.solver not in registry:
        raise ProtocolError(
            f"unknown solver {request.solver!r}; "
            f"known: {sorted(registry)} or 'resilient'"
        )
    fn, takes_deadline = registry[request.solver]
    if takes_deadline and request.timeout is not None:
        from repro.resilience.deadline import Deadline

        options.setdefault("deadline", Deadline.after(request.timeout))
    if on_stage is not None:
        on_stage(request.solver)
    return fn(request.system, request.k, request.s_hat, **options)


def _result_payload(request_id: int, result: CoverResult) -> dict:
    # params["resilience"] is a nested dict that CoverResult.to_dict
    # would silently drop; ship it as its own key so the supervisor can
    # reattach it.
    resilience = result.params.pop("resilience", None)
    return {
        "kind": "result",
        "id": request_id,
        "status": "ok",
        "result": result.to_dict(),
        "resilience": resilience,
    }


def _error_payload(request_id: int, error: BaseException) -> dict:
    payload = {
        "kind": "result",
        "id": request_id,
        "status": "error",
        "error_type": type(error).__name__,
        "message": str(error) or type(error).__name__,
        "exit_code": getattr(error, "exit_code", 1),
    }
    partial = getattr(error, "partial", None)
    if isinstance(partial, CoverResult):
        partial.params.pop("resilience", None)
        payload["partial"] = partial.to_dict()
    return payload


#: Live shard trackers by shard id, for universe-sharded solves. The
#: supervisor opens shards with ``shard_open``, drives them with
#: ``shard_select`` / ``shard_reset``, and frees them with
#: ``shard_close``; the backing systems flow through the same
#: fingerprint LRU as whole solves, so repeat tenants reuse both the
#: deserialized system and its packed layout.
_SHARD_TRACKERS: dict = {}


#: Cap on trace records shipped per shard reply frame: shard RPCs are
#: per-selection, so each reply carries at most a handful of spans, but
#: a hot tracker-event storm must still degrade to truncation.
_MAX_SHARD_TRACE_RECORDS = 1_000


def _shard_op(out, frame: dict) -> dict:
    """Execute one shard RPC and build (without writing) its reply."""
    from repro.resilience.pool.protocol import _system_from_payload_cached

    kind = frame.get("kind")
    shard_id = frame.get("shard")
    if kind == "shard_open":
        from repro.core.packed import PackedMarginalTracker, shard_layout

        with obs_trace.span(
            "shard_open", shard=shard_id,
            lo=frame.get("lo"), hi=frame.get("hi"),
        ):
            system = _system_from_payload_cached(
                frame["system"], frame.get("system_fp")
            )
            layout = shard_layout(system, frame["lo"], frame["hi"])
            _SHARD_TRACKERS[shard_id] = PackedMarginalTracker(
                system, layout=layout
            )
        return {"kind": "shard_ready", "shard": shard_id,
                "local_elements": layout.n_elements}
    if kind == "shard_select":
        with obs_trace.span(
            "shard_select", shard=shard_id, set_id=frame.get("set_id")
        ):
            tracker = _SHARD_TRACKERS[shard_id]
            newly, ids, overlaps = tracker.select_with_deltas(
                frame["set_id"]
            )
        return {
            "kind": "shard_delta",
            "shard": shard_id,
            "newly": newly,
            "ids": ids,
            "overlaps": overlaps,
        }
    if kind == "shard_reset":
        with obs_trace.span("shard_reset", shard=shard_id):
            _SHARD_TRACKERS[shard_id].reset()
        return {"kind": "shard_ok", "shard": shard_id}
    # shard_close
    _SHARD_TRACKERS.pop(shard_id, None)
    return {"kind": "shard_ok", "shard": shard_id}


def _handle_shard(out, frame: dict) -> None:
    """Serve one universe-shard frame (see pool/sharded.py).

    When the frame carries ``"trace": true`` the worker captures its
    spans for the one RPC (the ``shard_*`` span plus any tracker events)
    and ships them in the reply under ``"trace"``; the shard session on
    the parent side replays them into its own tracer, so shard work
    appears in the originating request's tree.
    """
    shard_id = frame.get("shard")
    records: list | None = None
    try:
        if frame.get("trace"):
            with obs_trace.capture() as records:
                reply = _shard_op(out, frame)
        else:
            reply = _shard_op(out, frame)
    except (ReproError, MemoryError, ArithmeticError, ValueError,
            KeyError, IndexError, TypeError, AttributeError) as error:
        traceback.print_exc(file=sys.stderr)
        reply = {
            "kind": "shard_error",
            "shard": shard_id,
            "error_type": type(error).__name__,
            "message": str(error) or type(error).__name__,
        }
    if records:
        if len(records) > _MAX_SHARD_TRACE_RECORDS:
            dropped = len(records) - _MAX_SHARD_TRACE_RECORDS
            records = records[:_MAX_SHARD_TRACE_RECORDS]
            records.append(
                {
                    "type": "event",
                    "name": "trace_truncated",
                    "t": 0.0,
                    "attrs": {"dropped_records": dropped},
                }
            )
        reply["trace"] = records
    write_frame(out, reply)


def _handle_solve(out, payload: dict) -> None:
    request_id, request = request_from_payload(payload)
    injector = faults.active()

    def emit_stage(stage: str) -> None:
        # Stage frames are tiny and drive circuit-breaker blame; they
        # are never chaos-corrupted so blame attribution itself stays
        # deterministic under IPC-corruption storms.
        _ring_event("worker_stage", request=request_id, stage=stage)
        write_frame(
            out, {"kind": "stage", "id": request_id, "stage": stage}
        )

    trace_records: list | None = None
    # Bind the originating request's trace context (when the supervisor
    # forwarded one) so a worker acting as a sharding parent propagates
    # it onto its own shard-session frames.
    trace_ctx = obs_trace.parse_traceparent(request.traceparent)
    _ring_event(
        "worker_solve_start",
        request=request_id,
        solver=request.solver,
        k=request.k,
        timeout=request.timeout,
        tag=request.tag,
    )
    try:
        if injector is not None:
            injector.worker_entry()
        with obs_trace.context(trace_ctx), hang_watchdog(
            request.timeout, context=f"request {request_id}"
        ):
            if request.trace:
                with obs_trace.capture() as trace_records:
                    result = run_request(request, on_stage=emit_stage)
            else:
                result = run_request(request, on_stage=emit_stage)
        response = _result_payload(request_id, result)
    except (ReproError, MemoryError, ArithmeticError, ValueError,
            KeyError, IndexError, TypeError, AttributeError,
            RecursionError) as error:
        response = _error_payload(request_id, error)
        traceback.print_exc(file=sys.stderr)
    if trace_records:
        # Error frames keep whatever was captured before the failure:
        # a partial trace is exactly what explains a failed attempt.
        if len(trace_records) > _MAX_TRACE_RECORDS:
            dropped = len(trace_records) - _MAX_TRACE_RECORDS
            trace_records = trace_records[:_MAX_TRACE_RECORDS]
            trace_records.append(
                {
                    "type": "event",
                    "name": "trace_truncated",
                    "t": 0.0,
                    "attrs": {"dropped_records": dropped},
                }
            )
        response["trace"] = trace_records
    # Peak RSS rides every result frame (one getrusage call): the
    # supervisor turns it into attempt provenance and a worker memory
    # gauge, giving the parent a memory story it cannot observe itself.
    from repro.obs.profile import peak_rss_bytes

    rss = peak_rss_bytes()
    if rss is not None:
        response["peak_rss_bytes"] = rss
    _ring_event(
        "worker_solve_end", request=request_id, status=response.get("status")
    )
    # The worker's black box rides home on every frame — if the next
    # request SIGKILLs this process, the supervisor already holds the
    # freshest ring for the postmortem bundle.
    response["flightrec"] = list(_ring)
    write_frame(out, response, injector=injector)


def _apply_memory_limit(headroom_mb: int | None) -> int | None:
    """Set ``RLIMIT_AS`` to current usage + headroom; None if not set."""
    if not headroom_mb:
        return None
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        print(
            "pool worker: resource module unavailable, memory limit "
            "not applied",
            file=sys.stderr,
        )
        return None
    limit = _current_vm_bytes() + headroom_mb * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError) as error:  # pragma: no cover
        print(
            f"pool worker: could not set RLIMIT_AS: {error}",
            file=sys.stderr,
        )
        return None
    return limit


def _current_vm_bytes() -> int:
    """Address-space size right now (baseline for the headroom limit)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover
        return 512 * 1024 * 1024


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-pool-worker")
    parser.add_argument("--memory-limit-mb", type=int, default=None)
    parser.add_argument("--worker-id", type=int, default=0)
    args = parser.parse_args(argv)
    # Worker stderr is operator-visible through the supervisor, so give
    # repro loggers (watchdog notices, etc.) a handler honouring
    # REPRO_LOG_LEVEL.
    console_logging()

    # Claim the frame stream, then point fd 1 at stderr so stray prints
    # from solver code cannot corrupt the protocol.
    out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    inp = sys.stdin.buffer

    limit = _apply_memory_limit(args.memory_limit_mb)
    try:
        write_frame(
            out,
            {
                "kind": "ready",
                "pid": os.getpid(),
                "worker_id": args.worker_id,
                "memory_limit_bytes": limit,
            },
        )
    except BrokenPipeError:  # supervisor shut down while we were starting
        return 0

    while True:
        try:
            frame = read_frame(inp)
        except ProtocolError as error:
            # A lying stdin cannot be resynchronized; die loudly and let
            # the supervisor respawn a clean worker.
            print(f"pool worker: protocol error on stdin: {error}",
                  file=sys.stderr)
            return ProtocolError.exit_code
        if frame is None:  # supervisor closed the pipe
            return 0
        kind = frame.get("kind")
        try:
            if kind == "shutdown":
                return 0
            if kind == "ping":
                write_frame(out, {"kind": "pong", "pid": os.getpid()})
            elif kind == "solve":
                _handle_solve(out, frame)
            elif kind in ("shard_open", "shard_select", "shard_reset",
                          "shard_close"):
                _handle_shard(out, frame)
            else:
                print(f"pool worker: ignoring unknown frame kind {kind!r}",
                      file=sys.stderr)
        except BrokenPipeError:  # supervisor died; nothing left to serve
            return 0


if __name__ == "__main__":
    sys.exit(main())
