"""Universe-sharded pool solves: one greedy loop, S shard workers.

A single packed tracker already vectorizes the marginal updates, but one
process still owns the whole universe. This module splits the element
universe into ``S`` word-aligned shards, hands each shard to a pool
worker (round-robin when ``S`` exceeds the worker count), and keeps the
greedy control loop in the parent:

* Each worker builds a :class:`~repro.core.packed.PackedMarginalTracker`
  over a shard-restricted :class:`~repro.core.packed.PackedLayout`
  (``shard_open``), reusing the same fingerprint-keyed system LRU as
  whole solves, so repeat tenants pay for neither deserialization nor
  layout builds.
* :class:`ShardedTracker` mirrors the tracker API in the parent. Every
  ``select`` fans a ``shard_select`` frame out to all shards and merges
  the returned per-set overlap deltas (``np.add.at``) into the global
  marginal vector. A set's global marginal is the sum of its per-shard
  marginals (benefits partition across shards), so the merged counts —
  and therefore every subsequent argmax — are *exactly* the
  single-process packed tracker's. The parent computes all metrics
  itself; worker-side metrics objects are never consulted.
* :func:`sharded_solve` injects the merged tracker into
  :func:`~repro.core.cwsc.cwsc` / :func:`~repro.core.cmc.cmc` via their
  ``tracker`` parameter, so selections, costs, and
  :class:`~repro.core.result.Metrics` are byte-identical to a
  single-process ``backend="packed"`` solve (asserted in
  ``tests/resilience/test_sharded.py``).

Fault handling is fail-fast-then-fall-back: any worker death, protocol
error, or deadline miss raises :class:`ShardError`; ``sharded_solve``
then (by default) redoes the whole solve single-process with the packed
backend — identical answer, no sharding — and records why in
``params["sharding"]``.
"""

from __future__ import annotations

import os
import selectors
import time
from typing import Iterable

from repro.errors import ReproError, ValidationError
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry
from repro.resilience.pool.protocol import (
    FrameReader,
    system_payload_and_fingerprint,
    write_frame,
)
from repro.resilience.pool.supervisor import spawn_worker_process

__all__ = [
    "ShardError",
    "ShardSession",
    "ShardedTracker",
    "plan_shards",
    "sharded_solve",
]

#: Default per-RPC collection timeout: generous next to a select's real
#: cost (milliseconds) but bounded so a hung worker cannot stall the
#: greedy loop forever.
RPC_TIMEOUT = 60.0


class ShardError(ReproError):
    """A shard worker died, timed out, or broke protocol mid-solve."""


def plan_shards(n_elements: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, n_elements)`` into ``shards`` word-aligned ranges.

    Every boundary except the last is a multiple of 64 so shard layouts
    slice whole words. With more shards than words some trailing shards
    come out empty — legal (an empty shard is always exhausted) so the
    caller's shard count is honored exactly.
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    n_words = (n_elements + 63) >> 6
    ranges: list[tuple[int, int]] = []
    base, extra = divmod(n_words, shards)
    word = 0
    for index in range(shards):
        width = base + (1 if index < extra else 0)
        lo = min(word << 6, n_elements)
        word += width
        hi = min(word << 6, n_elements)
        ranges.append((lo, hi))
    if ranges:
        ranges[-1] = (ranges[-1][0], n_elements)
    return ranges


class ShardSession:
    """Owns the worker processes serving one sharded solve.

    Shards are assigned to workers round-robin; one worker can serve
    several shards (frames to the same worker queue behind each other,
    which only costs latency, never correctness). Use as a context
    manager — ``close`` is unconditional process teardown.
    """

    def __init__(
        self,
        system,
        shards: int,
        workers: int | None = None,
        memory_limit_mb: int | None = None,
        worker_env: dict | None = None,
        rpc_timeout: float = RPC_TIMEOUT,
    ) -> None:
        self.system = system
        self.ranges = plan_shards(system.n_elements, shards)
        n_workers = workers if workers else min(shards, os.cpu_count() or 2)
        self.n_workers = max(1, min(n_workers, shards))
        self.rpc_timeout = rpc_timeout
        #: shard index -> worker index
        self.assignment = [
            shard % self.n_workers for shard in range(len(self.ranges))
        ]
        self._procs = []
        self._readers = []
        self._selector = selectors.DefaultSelector()
        self._closed = False
        #: Ask shard workers to capture and ship their spans whenever
        #: this process traces — inside a pool worker's capture() this
        #: is how shard spans ride home in the result frame. The current
        #: trace context (if any) stamps frames with the request's
        #: traceparent so shard workers know the originating request.
        self._trace = obs_trace.enabled()
        ctx = obs_trace.get_context()
        self._traceparent = ctx.to_traceparent() if ctx else None
        self._replay_seq = 0
        try:
            self._start(memory_limit_mb, worker_env)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _start(self, memory_limit_mb, worker_env) -> None:
        with obs_trace.span(
            "shard_session_open",
            shards=len(self.ranges),
            workers=self.n_workers,
        ) if obs_trace.enabled() else obs_trace.NULL_SPAN:
            for index in range(self.n_workers):
                proc = spawn_worker_process(
                    index,
                    memory_limit_mb=memory_limit_mb,
                    worker_env=worker_env,
                )
                self._procs.append(proc)
                self._readers.append(FrameReader())
                self._selector.register(
                    proc.stdout, selectors.EVENT_READ, index
                )
            # One ready frame per worker before any shard traffic.
            self._collect("ready", range(self.n_workers), key="worker_id")
            payload, fingerprint = system_payload_and_fingerprint(self.system)
            for shard, (lo, hi) in enumerate(self.ranges):
                self._send(shard, {
                    "kind": "shard_open",
                    "shard": shard,
                    "system": payload,
                    "system_fp": fingerprint,
                    "lo": lo,
                    "hi": hi,
                })
            self._collect("shard_ready", range(len(self.ranges)))
            get_registry().gauge(
                "scwsc_shard_workers",
                "Worker processes serving the current sharded solve",
            ).set(self.n_workers)

    def _send(self, shard: int, frame: dict) -> None:
        if self._trace:
            frame["trace"] = True
            if self._traceparent is not None:
                frame["traceparent"] = self._traceparent
        proc = self._procs[self.assignment[shard]]
        if proc.poll() is not None:
            raise ShardError(
                f"shard worker {self.assignment[shard]} died "
                f"(exit {proc.returncode})"
            )
        try:
            write_frame(proc.stdin, frame)
        except (OSError, ValueError) as error:
            raise ShardError(
                f"lost pipe to shard worker {self.assignment[shard]}: "
                f"{error}"
            ) from error

    def _collect(
        self, kind: str, tags: Iterable[int], key: str = "shard"
    ) -> dict[int, dict]:
        """Await one ``kind`` frame per tag; raise :class:`ShardError`
        on error frames, EOF, worker death, or timeout."""
        wanted = set(tags)
        got: dict[int, dict] = {}
        deadline = time.monotonic() + self.rpc_timeout
        while wanted:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise ShardError(
                    f"timed out waiting for {kind} from shards "
                    f"{sorted(wanted)}"
                )
            for selector_key, _ in self._selector.select(budget):
                worker = selector_key.data
                data = os.read(selector_key.fileobj.fileno(), 1 << 20)
                if not data:
                    raise ShardError(
                        f"shard worker {worker} closed its pipe "
                        "mid-solve"
                    )
                for frame in self._readers[worker].feed(data):
                    self._replay_trace(frame)
                    if frame.get("kind") == "shard_error":
                        raise ShardError(
                            f"shard {frame.get('shard')} failed: "
                            f"{frame.get('error_type')}: "
                            f"{frame.get('message')}"
                        )
                    if frame.get("kind") == kind:
                        tag = frame.get(key)
                        if tag in wanted:
                            wanted.discard(tag)
                            got[tag] = frame
        return got

    def _replay_trace(self, frame: dict) -> None:
        """Re-emit a shard reply's captured spans into the live tracer.

        Each reply gets a unique ``sh<shard>.<seq>.`` prefix so span ids
        from different shards (and successive RPCs on one shard) never
        collide, and its root spans are re-parented under the innermost
        open span — inside a traced solve that is the solver span doing
        the select, so shard work nests in the request's tree.
        """
        records = frame.get("trace")
        if not (isinstance(records, list) and records and obs_trace.enabled()):
            return
        self._replay_seq += 1
        obs_trace.replay(
            records,
            prefix=f"sh{frame.get('shard')}.{self._replay_seq}.",
            root_parent=obs_trace.current_span_id(),
            shard=frame.get("shard"),
        )

    # -- shard RPCs ------------------------------------------------------
    def open_count(self) -> int:
        return len(self.ranges)

    def select(self, set_id: int) -> dict[int, dict]:
        """Fan ``shard_select`` out to every shard; merged by caller."""
        for shard in range(len(self.ranges)):
            self._send(shard, {
                "kind": "shard_select",
                "shard": shard,
                "set_id": set_id,
            })
        return self._collect("shard_delta", range(len(self.ranges)))

    def reset(self) -> None:
        for shard in range(len(self.ranges)):
            self._send(shard, {"kind": "shard_reset", "shard": shard})
        self._collect("shard_ok", range(len(self.ranges)))

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    write_frame(proc.stdin, {"kind": "shutdown"})
                except (OSError, ValueError):
                    pass
            for stream in (proc.stdin, proc.stdout):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                proc.wait(timeout=1.0)
            except Exception:
                proc.kill()
                proc.wait()
        self._selector.close()


def _numpy():
    from repro.core import packed

    if not packed.HAVE_NUMPY:
        raise ValidationError(
            "universe sharding requires numpy >= 2.0 (the packed backend)"
        )
    import numpy as np

    return np


class ShardedTracker:
    """Parent-side merged marginal tracker over a :class:`ShardSession`.

    API-compatible with the packed tracker where the solvers need it
    (``reset`` / ``select`` / ``costs`` / the vectorized argmax
    helpers), with counts maintained by summing per-shard overlap
    deltas. All metrics are computed here, never from worker state.
    """

    backend_name = "sharded"

    def __init__(self, session: ShardSession, metrics=None) -> None:
        np = _numpy()
        from repro.core.packed import VectorSelectMixin  # noqa: F401
        from repro.core.result import Metrics

        self._np = np
        self._session = session
        self._system = session.system
        self._metrics = metrics if metrics is not None else Metrics()
        sets = self._system.sets
        m = len(sets)
        self._sizes = np.fromiter(
            (ws.size for ws in sets), dtype=np.int64, count=m
        )
        self._costs = np.fromiter(
            (ws.cost for ws in sets), dtype=np.float64, count=m
        )
        self._tracked = self._sizes > 0
        self._n_tracked = int(self._tracked.sum())
        self._counts = np.zeros(m, dtype=np.int64)
        self._live = np.zeros(m, dtype=bool)
        self._covered_count = 0
        self._needs_remote_reset = False
        self.fresh = False
        self.reset()

    # Vector argmax: borrow the packed mixin's implementations wholesale
    # — they only touch _counts/_live/_costs_array()/_system.
    def _costs_array(self):
        return self._costs

    def _get_ranks(self):
        from repro.core.packed import VectorSelectMixin

        return VectorSelectMixin._get_ranks(self)

    _canon_ranks = None

    def best_gain_candidate(self, threshold):
        from repro.core.packed import VectorSelectMixin

        return VectorSelectMixin.best_gain_candidate(self, threshold)

    def best_benefit_in(self, member_ids):
        from repro.core.packed import VectorSelectMixin

        return VectorSelectMixin.best_benefit_in(self, member_ids)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the empty-solution state on parent and shards."""
        if self._needs_remote_reset:
            self._session.reset()
        self._needs_remote_reset = False
        np = self._np
        np.multiply(self._sizes, self._tracked, out=self._counts)
        np.copyto(self._live, self._tracked)
        self._covered_count = 0
        self._metrics.sets_considered += self._n_tracked
        self.fresh = True

    @property
    def metrics(self):
        """The metrics object this tracker accounts work into."""
        return self._metrics

    @property
    def costs(self):
        """Per-set costs, for vectorized level assignment."""
        return self._costs

    @property
    def covered_count(self) -> int:
        """``|covered|`` without copying."""
        return self._covered_count

    @property
    def live_ids(self) -> list:
        """Ids of sets with non-empty marginal benefit, ascending."""
        return self._np.nonzero(self._live)[0].tolist()

    def live_items(self) -> list:
        """``(set_id, |MBen|)`` pairs for all live sets."""
        ids = self._np.nonzero(self._live)[0]
        return list(zip(ids.tolist(), self._counts[ids].tolist()))

    def __contains__(self, set_id) -> bool:
        return bool(self._live[set_id])

    def __len__(self) -> int:
        return int(self._live.sum())

    def marginal_size(self, set_id) -> int:
        """``|MBen(s, S)|`` for a live set; 0 for an evicted one."""
        return int(self._counts[set_id])

    def drop(self, set_id) -> None:
        """Remove a set from consideration without selecting it."""
        self.fresh = False
        self._live[set_id] = False
        self._counts[set_id] = 0

    # ------------------------------------------------------------------
    def select(self, set_id) -> int:
        """Select a set across every shard and merge the deltas.

        The returned overlap pairs are summed directly into
        ``marginal_updates``: a set appears in a shard's delta only if
        it is locally live there, local liveness implies global
        liveness, and the per-shard overlaps of one set sum to its
        global ``|newly & MBen|`` — exactly the decrement (and update
        count) the single-process backends apply.
        """
        np = self._np
        self.fresh = False
        self._needs_remote_reset = True
        self._metrics.selections += 1
        self._live[set_id] = False
        self._counts[set_id] = 0
        deltas = self._session.select(set_id)
        newly = 0
        updates = 0
        overlap = np.zeros(self._counts.size, dtype=np.int64)
        for frame in deltas.values():
            newly += frame["newly"]
            ids = frame["ids"]
            if ids:
                amounts = np.asarray(frame["overlaps"], dtype=np.int64)
                updates += int(amounts.sum())
                np.add.at(
                    overlap, np.asarray(ids, dtype=np.int64), amounts
                )
        self._counts -= overlap
        np.logical_and(self._live, self._counts > 0, out=self._live)
        self._covered_count += newly
        self._metrics.marginal_updates += updates
        if obs_trace.enabled():
            obs_trace.event(
                "tracker_update",
                backend="sharded",
                strategy="shard_merge",
                set_id=set_id,
                newly_covered=newly,
                updates=updates,
                live=int(self._live.sum()),
            )
        return newly


def sharded_solve(
    system,
    k: int,
    s_hat: float,
    algorithm: str = "cwsc",
    shards: int = 2,
    workers: int | None = None,
    fallback: bool = True,
    memory_limit_mb: int | None = None,
    worker_env: dict | None = None,
    rpc_timeout: float = RPC_TIMEOUT,
    **solver_kwargs,
):
    """Solve with the greedy loop in-process and marginals sharded out.

    Parameters
    ----------
    algorithm:
        ``"cwsc"``, ``"cmc"``, or ``"cmc_epsilon"``.
    shards:
        Number of word-aligned universe shards (>= 1). More shards than
        workers is fine — assignment is round-robin.
    workers:
        Worker process count; defaults to ``min(shards, cpu_count)``.
    fallback:
        On any :class:`ShardError` mid-solve, redo the solve
        single-process with ``backend="packed"`` (identical selections)
        instead of raising. The result then records
        ``params["sharding"]["fallback"]`` with the reason.
    solver_kwargs:
        Passed to the underlying solver (``deadline``,
        ``on_infeasible``, ``b``, ``eps``, ...).

    Selections, costs, and metrics are byte-identical to the
    single-process packed backend; sharding buys parallelism and
    per-worker memory isolation, not a different answer.
    """
    _numpy()
    solver = _solver_for(algorithm)
    counter = get_registry().counter(
        "scwsc_sharded_solves_total",
        "Universe-sharded solve attempts, by outcome",
    )
    try:
        with ShardSession(
            system,
            shards,
            workers=workers,
            memory_limit_mb=memory_limit_mb,
            worker_env=worker_env,
            rpc_timeout=rpc_timeout,
        ) as session:
            tracker = ShardedTracker(session)
            result = solver(system, k, s_hat, tracker=tracker, **solver_kwargs)
        counter.inc(outcome="ok")
        result.params["sharding"] = {
            "shards": shards,
            "workers": session.n_workers,
        }
        return result
    except ShardError as error:
        counter.inc(outcome="fallback" if fallback else "error")
        obs_trace.event(
            "shard_fallback",
            algorithm=algorithm,
            shards=shards,
            error=str(error),
            fallback=fallback,
        )
        if not fallback:
            raise
        result = solver(system, k, s_hat, backend="packed", **solver_kwargs)
        result.params["sharding"] = {
            "shards": shards,
            "fallback": str(error),
        }
        return result


def _solver_for(algorithm: str):
    from repro.core.cmc import cmc
    from repro.core.cmc_epsilon import cmc_epsilon
    from repro.core.cwsc import cwsc

    solvers = {"cwsc": cwsc, "cmc": cmc, "cmc_epsilon": cmc_epsilon}
    if algorithm not in solvers:
        raise ValidationError(
            f"unknown sharded algorithm {algorithm!r}; "
            f"expected one of {sorted(solvers)}"
        )
    return solvers[algorithm]
