"""Resilient-solve subsystem: deadlines, fault injection, fallback chains.

Public surface:

* :class:`Deadline` — cooperative wall-clock budget polled by every core
  solver (``cwsc``, ``cmc``, ``cmc_epsilon``, ``solve_exact``,
  ``lp_rounding``); expiry raises
  :class:`~repro.errors.DeadlineExceeded` carrying the best partial
  result.
* :func:`resilient_solve` — run a fallback chain of solvers under a
  shared deadline, retry transient LP failures with seeded backoff,
  independently verify every candidate, and (given the paper's universal
  set) always return a feasible answer with a provenance record.
* :mod:`repro.resilience.faults` — deterministic chaos layer (injected
  LP failures, slow iterations, malformed marginal updates) used by the
  chaos test suite; enable via :func:`faults.install` or the
  ``REPRO_CHAOS`` environment variable.

See ``docs/RESILIENCE.md`` for the full model.

Implementation note: the core solvers import :mod:`.deadline` and
:mod:`.faults` (which depend only on :mod:`repro.errors`), while
:mod:`.chain` depends on the core solvers. To keep that layering
cycle-free, this package imports the chain module lazily (PEP 562).
"""

from __future__ import annotations

from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultConfig, FaultInjector, chaos

__all__ = [
    "DEFAULT_CHAIN",
    "Deadline",
    "FaultConfig",
    "FaultInjector",
    "StageRecord",
    "chaos",
    "faults",
    "resilient_solve",
]

#: Names resolved lazily from :mod:`repro.resilience.chain`.
_CHAIN_EXPORTS = frozenset({"DEFAULT_CHAIN", "StageRecord", "resilient_solve"})


def __getattr__(name: str):
    if name in _CHAIN_EXPORTS:
        from repro.resilience import chain

        return getattr(chain, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
