"""Resilient-solve subsystem: deadlines, fault injection, fallback chains.

Public surface:

* :class:`Deadline` — cooperative wall-clock budget polled by every core
  solver (``cwsc``, ``cmc``, ``cmc_epsilon``, ``solve_exact``,
  ``lp_rounding``); expiry raises
  :class:`~repro.errors.DeadlineExceeded` carrying the best partial
  result.
* :func:`resilient_solve` — run a fallback chain of solvers under a
  shared deadline, retry transient LP failures with seeded backoff,
  independently verify every candidate, and (given the paper's universal
  set) always return a feasible answer with a provenance record.
* :mod:`repro.resilience.faults` — deterministic chaos layer (injected
  LP failures, slow iterations, malformed marginal updates, and
  process-level faults: worker self-SIGKILL, hangs, memory hogs, IPC
  corruption) used by the chaos test suite; enable via
  :func:`faults.install` or the ``REPRO_CHAOS`` environment variable.
* :mod:`repro.resilience.pool` — the supervised process-isolated solver
  pool (:class:`SolverPool`, :func:`run_isolated`) behind
  ``resilient_solve(isolation="process")``: hard SIGKILL timeouts,
  ``RLIMIT_AS`` memory guards, requeue on worker death, and per-solver
  circuit breakers.

See ``docs/RESILIENCE.md`` for the full model and operations runbook.

Implementation note: the core solvers import :mod:`.deadline` and
:mod:`.faults` (which depend only on :mod:`repro.errors`), while
:mod:`.chain` and :mod:`.pool` depend on the core solvers. To keep that
layering cycle-free, this package imports those modules lazily
(PEP 562).
"""

from __future__ import annotations

from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultConfig, FaultInjector, chaos

__all__ = [
    "DEFAULT_CHAIN",
    "Deadline",
    "FaultConfig",
    "FaultInjector",
    "PoolConfig",
    "PoolResult",
    "SolveRequest",
    "SolverPool",
    "StageRecord",
    "chaos",
    "faults",
    "resilient_solve",
    "run_isolated",
]

#: Names resolved lazily from :mod:`repro.resilience.chain`.
_CHAIN_EXPORTS = frozenset({"DEFAULT_CHAIN", "StageRecord", "resilient_solve"})

#: Names resolved lazily from :mod:`repro.resilience.pool`.
_POOL_EXPORTS = frozenset(
    {"PoolConfig", "PoolResult", "SolveRequest", "SolverPool", "run_isolated"}
)


def __getattr__(name: str):
    if name in _CHAIN_EXPORTS:
        from repro.resilience import chain

        return getattr(chain, name)
    if name in _POOL_EXPORTS:
        from repro.resilience import pool

        return getattr(pool, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
