"""Deterministic fault injection ("chaos layer") for the solvers.

Robustness claims are only as good as the failures they were tested
against. This module lets tests (and adventurous operators) inject three
fault families into the core solvers, at hook points the solvers call
explicitly:

* **LP failures** — :meth:`FaultInjector.lp_attempt` raises
  :class:`~repro.errors.TransientSolverError` with probability
  ``lp_failure``, simulating a flaky LP backend. Hooked in
  :func:`repro.core.lp_bound.solve_lp_relaxation`.
* **Slow iterations** — :meth:`FaultInjector.iteration` sleeps
  ``slow_seconds`` with probability ``slow_iteration``, creating deadline
  pressure inside greedy loops. Hooked at the solvers' deadline
  checkpoints.
* **Malformed marginal-gain updates** — :meth:`FaultInjector.corrupt_marginal`
  perturbs the "newly covered" count returned by a selection with
  probability ``corrupt_marginal``, so a solver may *believe* it reached
  the coverage target when it did not. This is exactly the class of bug
  :func:`repro.core.validate.verify_result` exists to catch, and the
  fallback chain must reject such answers rather than return them.

All randomness comes from one ``random.Random(seed)``, so a given config
produces the same fault schedule on every run — failures reproduce.

Enabling
--------
* Tests / code: ``with chaos(FaultConfig(lp_failure=0.5, seed=7)): ...``
  or :func:`install` / :func:`uninstall`.
* Environment: set ``REPRO_CHAOS`` before the first solve, e.g.::

      REPRO_CHAOS="lp=0.3,slow=0.05,corrupt=0.1,seed=42,slow_seconds=0.005"

The solvers fetch the injector once per call via :func:`active`; when no
injector is installed the hooks cost one ``None`` check.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import TransientSolverError, ValidationError

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "active",
    "chaos",
    "install",
    "uninstall",
]

#: Mapping from ``REPRO_CHAOS`` keys to :class:`FaultConfig` fields.
_ENV_KEYS = {
    "lp": "lp_failure",
    "lp_failure": "lp_failure",
    "slow": "slow_iteration",
    "slow_iteration": "slow_iteration",
    "corrupt": "corrupt_marginal",
    "corrupt_marginal": "corrupt_marginal",
    "slow_seconds": "slow_seconds",
    "seed": "seed",
}


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and knobs for one chaos schedule.

    All rates are per-hook-call probabilities in ``[0, 1]``.
    """

    lp_failure: float = 0.0
    slow_iteration: float = 0.0
    corrupt_marginal: float = 0.0
    slow_seconds: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("lp_failure", "slow_iteration", "corrupt_marginal"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValidationError(
                    f"fault rate {name} must be in [0, 1], got {rate!r}"
                )
        if self.slow_seconds < 0:
            raise ValidationError(
                f"slow_seconds must be >= 0, got {self.slow_seconds!r}"
            )


@dataclass
class FaultStats:
    """Counters of what the injector actually did (for assertions)."""

    lp_failures: int = 0
    slowdowns: int = 0
    corruptions: int = 0


class FaultInjector:
    """One installed chaos schedule; see the module docstring."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        self._rng = random.Random(config.seed)

    # -- hooks (called by the solvers) ---------------------------------
    def lp_attempt(self) -> None:
        """Possibly fail an LP backend call."""
        if self.config.lp_failure and self._rng.random() < self.config.lp_failure:
            self.stats.lp_failures += 1
            raise TransientSolverError(
                "injected fault: LP backend failed "
                f"(#{self.stats.lp_failures})"
            )

    def iteration(self) -> None:
        """Possibly stall one solver iteration."""
        if (
            self.config.slow_iteration
            and self._rng.random() < self.config.slow_iteration
        ):
            self.stats.slowdowns += 1
            time.sleep(self.config.slow_seconds)

    def corrupt_marginal(self, newly: int) -> int:
        """Possibly inflate a "newly covered" count.

        Inflation (rather than deflation) is the nastier direction: the
        solver may stop early believing it hit the coverage target, and
        only independent verification can tell.
        """
        if (
            self.config.corrupt_marginal
            and self._rng.random() < self.config.corrupt_marginal
        ):
            self.stats.corruptions += 1
            return newly + 1 + self._rng.randrange(3)
        return newly


#: Sentinel meaning "environment not consulted yet".
_UNSET = object()
_ACTIVE: FaultInjector | None | object = _UNSET


def parse_env(value: str) -> FaultConfig:
    """Parse a ``REPRO_CHAOS`` string into a :class:`FaultConfig`."""
    kwargs: dict = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(
                f"REPRO_CHAOS entries must be key=value, got {part!r}"
            )
        key, _, raw = part.partition("=")
        field_name = _ENV_KEYS.get(key.strip())
        if field_name is None:
            raise ValidationError(
                f"unknown REPRO_CHAOS key {key.strip()!r}; "
                f"known: {sorted(set(_ENV_KEYS))}"
            )
        kwargs[field_name] = (
            int(raw) if field_name == "seed" else float(raw)
        )
    return FaultConfig(**kwargs)


def install(config: FaultConfig) -> FaultInjector:
    """Install a chaos schedule process-wide; returns the injector."""
    global _ACTIVE
    injector = FaultInjector(config)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove any installed injector (env var is *not* re-read)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The installed injector, or ``None`` when chaos is off.

    On first call, honors the ``REPRO_CHAOS`` environment variable.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        env = os.environ.get("REPRO_CHAOS", "").strip()
        _ACTIVE = FaultInjector(parse_env(env)) if env else None
    return _ACTIVE  # type: ignore[return-value]


@contextmanager
def chaos(config: FaultConfig):
    """Context manager installing (then restoring) a chaos schedule."""
    global _ACTIVE
    previous = _ACTIVE
    injector = install(config)
    try:
        yield injector
    finally:
        _ACTIVE = previous
