"""Deterministic fault injection ("chaos layer") for the solvers.

Robustness claims are only as good as the failures they were tested
against. This module lets tests (and adventurous operators) inject fault
families into the core solvers and the process-isolated worker pool, at
hook points the code calls explicitly:

* **LP failures** — :meth:`FaultInjector.lp_attempt` raises
  :class:`~repro.errors.TransientSolverError` with probability
  ``lp_failure``, simulating a flaky LP backend. Hooked in
  :func:`repro.core.lp_bound.solve_lp_relaxation`.
* **Slow iterations** — :meth:`FaultInjector.iteration` sleeps
  ``slow_seconds`` with probability ``slow_iteration``, creating deadline
  pressure inside greedy loops. Hooked at the solvers' deadline
  checkpoints.
* **Malformed marginal-gain updates** — :meth:`FaultInjector.corrupt_marginal`
  perturbs the "newly covered" count returned by a selection with
  probability ``corrupt_marginal``, so a solver may *believe* it reached
  the coverage target when it did not. This is exactly the class of bug
  :func:`repro.core.validate.verify_result` exists to catch, and the
  fallback chain must reject such answers rather than return them.

Process-level faults exercise the supervised worker pool
(:mod:`repro.resilience.pool`) end to end:

* **Worker SIGKILL** — ``worker_kill`` governs both
  :meth:`FaultInjector.worker_kill_scheduled` (consulted by the
  *supervisor* after dispatching a request, so a live child is killed
  mid-solve) and :meth:`FaultInjector.worker_entry` (the *worker* kills
  itself at solve start when the injector lives in the child via
  ``REPRO_CHAOS``).
* **Worker hang** — ``worker_hang`` makes the worker sleep
  ``hang_seconds`` at solve start, simulating non-cooperative code that
  ignores deadlines; only the supervisor's hard kill can end it.
* **Worker OOM** — ``worker_oom`` makes the worker allocate memory in
  chunks up to ``oom_bytes``; under an rlimit this dies with a real
  ``MemoryError`` (or an OOM kill), without one a simulated
  ``MemoryError`` is raised once the budget is reached.
* **IPC corruption** — :meth:`FaultInjector.corrupt_frame` garbles an
  encoded response frame with probability ``ipc_corrupt``, so the
  supervisor's tolerant decoder must detect and recover.

Server-facing faults model misbehaving *clients* of the ``scwsc serve``
daemon (:mod:`repro.serve`); the chaos client in the serve test suite
consults them to decide how to abuse a connection:

* **Slow client** — :meth:`FaultInjector.slow_client` returns a stall
  of ``slow_client_seconds`` with probability ``slow_client``: the
  client sends part of a request body then goes quiet, exercising the
  daemon's read timeouts.
* **Malformed request** — :meth:`FaultInjector.malformed_request`
  garbles an encoded HTTP request body with probability
  ``malformed_request`` (truncation, bit flips, or non-JSON noise), so
  the daemon's length-checked JSON parsing must reject without
  wedging the accept loop.
* **Connection reset** — :meth:`FaultInjector.conn_reset` tells the
  client to abort the TCP connection mid-request with probability
  ``conn_reset``, exercising the daemon's tolerance of clients that
  vanish before (or while) a response is written.

All randomness comes from one ``random.Random(seed)``, so a given config
produces the same fault schedule on every run — failures reproduce.
``fault_limit`` caps the *total* number of injected faults per injector
(0 = unlimited), which lets a test say "kill exactly one worker, then
behave" and watch the requeue succeed.

Enabling
--------
* Tests / code: ``with chaos(FaultConfig(lp_failure=0.5, seed=7)): ...``
  or :func:`install` / :func:`uninstall`.
* Environment: set ``REPRO_CHAOS`` before the first solve, e.g.::

      REPRO_CHAOS="lp=0.3,slow=0.05,corrupt=0.1,seed=42,slow_seconds=0.005"
      REPRO_CHAOS="kill=1,limit=1"          # first worker solve is SIGKILLed

The solvers fetch the injector once per call via :func:`active`; when no
injector is installed the hooks cost one ``None`` check. Pool workers
are separate processes: an injector installed in the parent drives only
the supervisor-side hooks, while ``REPRO_CHAOS`` in the worker's
environment drives the child-side hooks.
"""

from __future__ import annotations

import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import TransientSolverError, ValidationError

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "active",
    "chaos",
    "install",
    "uninstall",
]

#: Mapping from ``REPRO_CHAOS`` keys to :class:`FaultConfig` fields.
_ENV_KEYS = {
    "lp": "lp_failure",
    "lp_failure": "lp_failure",
    "slow": "slow_iteration",
    "slow_iteration": "slow_iteration",
    "corrupt": "corrupt_marginal",
    "corrupt_marginal": "corrupt_marginal",
    "slow_seconds": "slow_seconds",
    "seed": "seed",
    "kill": "worker_kill",
    "worker_kill": "worker_kill",
    "hang": "worker_hang",
    "worker_hang": "worker_hang",
    "oom": "worker_oom",
    "worker_oom": "worker_oom",
    "ipc": "ipc_corrupt",
    "ipc_corrupt": "ipc_corrupt",
    "hang_seconds": "hang_seconds",
    "oom_bytes": "oom_bytes",
    "slow_client": "slow_client",
    "malformed": "malformed_request",
    "malformed_request": "malformed_request",
    "reset": "conn_reset",
    "conn_reset": "conn_reset",
    "slow_client_seconds": "slow_client_seconds",
    "limit": "fault_limit",
    "fault_limit": "fault_limit",
}

#: Fields parsed as integers from the environment.
_INT_FIELDS = frozenset({"seed", "fault_limit", "oom_bytes"})


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and knobs for one chaos schedule.

    All rates are per-hook-call probabilities in ``[0, 1]``.
    """

    lp_failure: float = 0.0
    slow_iteration: float = 0.0
    corrupt_marginal: float = 0.0
    slow_seconds: float = 0.002
    seed: int = 0
    worker_kill: float = 0.0
    worker_hang: float = 0.0
    worker_oom: float = 0.0
    ipc_corrupt: float = 0.0
    hang_seconds: float = 30.0
    oom_bytes: int = 256 * 1024 * 1024
    slow_client: float = 0.0
    malformed_request: float = 0.0
    conn_reset: float = 0.0
    slow_client_seconds: float = 1.0
    fault_limit: int = 0

    def __post_init__(self) -> None:
        for name in (
            "lp_failure",
            "slow_iteration",
            "corrupt_marginal",
            "worker_kill",
            "worker_hang",
            "worker_oom",
            "ipc_corrupt",
            "slow_client",
            "malformed_request",
            "conn_reset",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValidationError(
                    f"fault rate {name} must be in [0, 1], got {rate!r}"
                )
        if self.slow_seconds < 0:
            raise ValidationError(
                f"slow_seconds must be >= 0, got {self.slow_seconds!r}"
            )
        if self.hang_seconds < 0:
            raise ValidationError(
                f"hang_seconds must be >= 0, got {self.hang_seconds!r}"
            )
        if self.slow_client_seconds < 0:
            raise ValidationError(
                f"slow_client_seconds must be >= 0, "
                f"got {self.slow_client_seconds!r}"
            )
        if self.oom_bytes < 0:
            raise ValidationError(
                f"oom_bytes must be >= 0, got {self.oom_bytes!r}"
            )
        if self.fault_limit < 0:
            raise ValidationError(
                f"fault_limit must be >= 0, got {self.fault_limit!r}"
            )


@dataclass
class FaultStats:
    """Counters of what the injector actually did (for assertions)."""

    lp_failures: int = 0
    slowdowns: int = 0
    corruptions: int = 0
    worker_kills: int = 0
    worker_hangs: int = 0
    worker_ooms: int = 0
    ipc_corruptions: int = 0
    slow_clients: int = 0
    malformed_requests: int = 0
    conn_resets: int = 0

    @property
    def total(self) -> int:
        return (
            self.lp_failures
            + self.slowdowns
            + self.corruptions
            + self.worker_kills
            + self.worker_hangs
            + self.worker_ooms
            + self.ipc_corruptions
            + self.slow_clients
            + self.malformed_requests
            + self.conn_resets
        )


class FaultInjector:
    """One installed chaos schedule; see the module docstring."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        self._rng = random.Random(config.seed)

    def _take(self, rate: float) -> bool:
        """Draw once against ``rate``, honoring the global fault budget.

        The RNG is consumed whenever ``rate`` is non-zero (even when the
        budget is spent) so the schedule stays identical no matter where
        ``fault_limit`` truncates it.
        """
        if not rate:
            return False
        hit = self._rng.random() < rate
        if not hit:
            return False
        limit = self.config.fault_limit
        if limit and self.stats.total >= limit:
            return False
        return True

    # -- hooks (called by the solvers) ---------------------------------
    def lp_attempt(self) -> None:
        """Possibly fail an LP backend call."""
        if self._take(self.config.lp_failure):
            self.stats.lp_failures += 1
            raise TransientSolverError(
                "injected fault: LP backend failed "
                f"(#{self.stats.lp_failures})"
            )

    def iteration(self) -> None:
        """Possibly stall one solver iteration."""
        if self._take(self.config.slow_iteration):
            self.stats.slowdowns += 1
            time.sleep(self.config.slow_seconds)

    def corrupt_marginal(self, newly: int) -> int:
        """Possibly inflate a "newly covered" count.

        Inflation (rather than deflation) is the nastier direction: the
        solver may stop early believing it hit the coverage target, and
        only independent verification can tell.
        """
        if self._take(self.config.corrupt_marginal):
            self.stats.corruptions += 1
            return newly + 1 + self._rng.randrange(3)
        return newly

    # -- hooks (called by the pool supervisor, parent side) ------------
    def worker_kill_scheduled(self) -> bool:
        """Whether the supervisor should SIGKILL the worker it just
        dispatched to, simulating a crash mid-solve."""
        if self._take(self.config.worker_kill):
            self.stats.worker_kills += 1
            return True
        return False

    # -- hooks (called inside a pool worker, child side) ---------------
    def worker_entry(self) -> None:
        """Run process-level faults at the start of a worker solve."""
        if self._take(self.config.worker_kill):
            self.stats.worker_kills += 1
            os.kill(os.getpid(), signal.SIGKILL)
        if self._take(self.config.worker_hang):
            self.stats.worker_hangs += 1
            time.sleep(self.config.hang_seconds)
        if self._take(self.config.worker_oom):
            self.stats.worker_ooms += 1
            self._hog_memory()

    def _hog_memory(self) -> None:
        """Allocate until the rlimit bites or the injection budget is hit.

        With ``resource.setrlimit`` in force this raises a *real*
        ``MemoryError`` (or the process is OOM-killed); without one, a
        simulated ``MemoryError`` fires at ``oom_bytes`` so the fault
        cannot take down an unconfined test machine.
        """
        chunk = 8 * 1024 * 1024
        hog: list[bytearray] = []
        allocated = 0
        while allocated < self.config.oom_bytes:
            hog.append(bytearray(chunk))
            allocated += chunk
        raise MemoryError(
            f"injected fault: memory hog reached {allocated} bytes "
            "without hitting an rlimit"
        )

    # -- hooks (called by a chaos HTTP client of `scwsc serve`) --------
    def slow_client(self) -> float:
        """Seconds the client should stall mid-request (0 = behave)."""
        if self._take(self.config.slow_client):
            self.stats.slow_clients += 1
            return self.config.slow_client_seconds
        return 0.0

    def malformed_request(self, body: bytes) -> bytes:
        """Possibly garble an encoded HTTP request body."""
        if not self._take(self.config.malformed_request):
            return body
        self.stats.malformed_requests += 1
        mode = self._rng.randrange(3)
        if mode == 0 and len(body) > 1:
            return body[: len(body) // 2]  # truncated JSON
        if mode == 1:
            return b"\x00\xfe not json at all \xff" + body[:8]
        corrupted = bytearray(body)
        for _ in range(max(1, len(corrupted) // 16)):
            corrupted[self._rng.randrange(len(corrupted))] ^= 0xFF
        return bytes(corrupted)

    def conn_reset(self) -> bool:
        """Whether the client should abort the connection mid-request."""
        if self._take(self.config.conn_reset):
            self.stats.conn_resets += 1
            return True
        return False

    def corrupt_frame(self, data: bytes) -> bytes:
        """Possibly garble an encoded IPC frame (worker write path)."""
        if not self._take(self.config.ipc_corrupt):
            return data
        self.stats.ipc_corruptions += 1
        mode = self._rng.randrange(3)
        if mode == 0 and len(data) > 1:
            return data[: len(data) // 2]  # truncated mid-frame
        if mode == 1:
            # Implausible length prefix followed by the old body.
            return b"\xff\xff\xff\xff" + data[4:]
        corrupted = bytearray(data)
        for _ in range(max(1, len(corrupted) // 16)):
            corrupted[self._rng.randrange(len(corrupted))] ^= 0xFF
        return bytes(corrupted)


#: Sentinel meaning "environment not consulted yet".
_UNSET = object()
_ACTIVE: FaultInjector | None | object = _UNSET


def parse_env(value: str) -> FaultConfig:
    """Parse a ``REPRO_CHAOS`` string into a :class:`FaultConfig`."""
    kwargs: dict = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(
                f"REPRO_CHAOS entries must be key=value, got {part!r}"
            )
        key, _, raw = part.partition("=")
        field_name = _ENV_KEYS.get(key.strip())
        if field_name is None:
            raise ValidationError(
                f"unknown REPRO_CHAOS key {key.strip()!r}; "
                f"known: {sorted(set(_ENV_KEYS))}"
            )
        kwargs[field_name] = (
            int(raw) if field_name in _INT_FIELDS else float(raw)
        )
    return FaultConfig(**kwargs)


def encode_env(config: FaultConfig) -> str:
    """Render a config as a ``REPRO_CHAOS`` string (for worker envs)."""
    parts = []
    for key, value in (
        ("lp", config.lp_failure),
        ("slow", config.slow_iteration),
        ("corrupt", config.corrupt_marginal),
        ("kill", config.worker_kill),
        ("hang", config.worker_hang),
        ("oom", config.worker_oom),
        ("ipc", config.ipc_corrupt),
        ("slow_client", config.slow_client),
        ("malformed", config.malformed_request),
        ("reset", config.conn_reset),
    ):
        if value:
            parts.append(f"{key}={value:g}")
    defaults = FaultConfig()
    if config.slow_seconds != defaults.slow_seconds:
        parts.append(f"slow_seconds={config.slow_seconds:g}")
    if config.hang_seconds != defaults.hang_seconds:
        parts.append(f"hang_seconds={config.hang_seconds:g}")
    if config.slow_client_seconds != defaults.slow_client_seconds:
        parts.append(
            f"slow_client_seconds={config.slow_client_seconds:g}"
        )
    if config.oom_bytes != defaults.oom_bytes:
        parts.append(f"oom_bytes={config.oom_bytes}")
    if config.fault_limit:
        parts.append(f"limit={config.fault_limit}")
    parts.append(f"seed={config.seed}")
    return ",".join(parts)


def install(config: FaultConfig) -> FaultInjector:
    """Install a chaos schedule process-wide; returns the injector."""
    global _ACTIVE
    injector = FaultInjector(config)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove any installed injector (env var is *not* re-read)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The installed injector, or ``None`` when chaos is off.

    On first call, honors the ``REPRO_CHAOS`` environment variable.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        env = os.environ.get("REPRO_CHAOS", "").strip()
        _ACTIVE = FaultInjector(parse_env(env)) if env else None
    return _ACTIVE  # type: ignore[return-value]


@contextmanager
def chaos(config: FaultConfig):
    """Context manager installing (then restoring) a chaos schedule."""
    global _ACTIVE
    previous = _ACTIVE
    injector = install(config)
    try:
        yield injector
    finally:
        _ACTIVE = previous
