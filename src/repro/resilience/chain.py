"""The resilient fallback chain: never lose a solve to one flaky stage.

The paper guarantees a feasible answer always exists — the universal
(all-wildcards) set covers every record — yet individual solvers can still
fail in practice: exact search outgrows its time budget, the LP backend
hits numerical trouble, CWSC's ``rem / i`` threshold can be infeasible on
adversarial inputs. :func:`resilient_solve` turns those point failures
into a degradation ladder:

1. Each stage in ``chain`` runs under its slice of the overall deadline.
2. :class:`~repro.errors.TransientSolverError` (flaky LP backend, real or
   injected) is retried with capped exponential backoff and
   deterministic, seeded jitter.
3. Every candidate answer is re-verified from scratch with
   :func:`~repro.core.validate.verify_result` against the stage's own
   guarantee envelope — a stage that *claims* feasibility but lies (e.g.
   under injected marginal-gain corruption) is rejected, not returned.
4. The terminal ``"universal"`` stage returns the cheapest full-coverage
   set, so on any system satisfying the paper's assumption the chain is
   guaranteed to produce a feasible, independently verified answer.

The returned :class:`~repro.core.result.CoverResult` carries a provenance
record in ``result.params["resilience"]``: which stages ran, failed,
timed out, or were rejected, with attempt counts and timings.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.cmc import COVERAGE_DISCOUNT, cmc
from repro.core.cmc_epsilon import cmc_epsilon
from repro.core.cwsc import cwsc
from repro.core.exact import solve_exact
from repro.core.fallbacks import universal_result
from repro.core.guarantees import max_sets_epsilon, max_sets_standard
from repro.core.lp_rounding import lp_rounding
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.core.validate import verify_result
from repro.errors import (
    DeadlineExceeded,
    InfeasibleError,
    ReproError,
    TransientSolverError,
    ValidationError,
)
from repro.obs import trace as obs_trace
from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.debug import hang_watchdog

__all__ = ["DEFAULT_CHAIN", "StageRecord", "resilient_solve"]

#: Stage order: strongest guarantees first, cheapest certainty last.
DEFAULT_CHAIN: tuple[str, ...] = (
    "exact",
    "lp_rounding",
    "cwsc",
    "cmc",
    "universal",
)

#: Default node budget for the exact stage so it cannot wedge a chain
#: that was given no deadline.
DEFAULT_EXACT_NODE_LIMIT = 200_000


@dataclass
class StageRecord:
    """What one chain stage did — the provenance unit.

    ``status`` is one of ``"ok"`` (accepted answer), ``"rejected"``
    (answer failed independent verification), ``"infeasible"``,
    ``"timeout"``, ``"transient_exhausted"`` (retries used up),
    ``"error"`` (other library failure), or ``"skipped"`` (overall
    deadline already spent).
    """

    stage: str
    status: str
    attempts: int = 0
    elapsed_seconds: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "detail": self.detail,
        }


@dataclass
class _StageSpec:
    """How to run and how to judge one stage."""

    run: Callable[[Deadline | None], CoverResult]
    k_bound: int | None
    coverage_target: float


def _stage_specs(
    system: SetSystem,
    k: int,
    s_hat: float,
    seed: int,
    exact_node_limit: int | None,
    stage_options: dict[str, dict],
    backend: str | None = None,
    shards: int | None = None,
) -> dict[str, _StageSpec]:
    """Build the known stages; per-stage kwargs come from stage_options.

    ``backend`` seeds the greedy stages' tracker backend (their own
    ``stage_options`` entries win). ``shards`` wraps the greedy stages
    in :func:`~repro.resilience.pool.sharded.sharded_solve` — identical
    selections, marginals maintained by shard workers.
    """

    def opts(name: str) -> dict:
        return dict(stage_options.get(name, {}))

    def greedy_run(name: str, solver, run_opts: dict):
        if backend is not None:
            run_opts.setdefault("backend", backend)
        if shards:
            from repro.resilience.pool.sharded import sharded_solve

            # The sharded path is packed-equivalent by construction; a
            # tracker backend choice would be meaningless there (and
            # collides with the fallback's explicit backend="packed").
            run_opts.pop("backend", None)
            return lambda d: sharded_solve(
                system, k, s_hat, algorithm=name, shards=shards,
                deadline=d, **run_opts,
            )
        return lambda d: solver(system, k, s_hat, deadline=d, **run_opts)

    specs: dict[str, _StageSpec] = {}

    exact_opts = opts("exact")
    exact_opts.setdefault("node_limit", exact_node_limit)
    specs["exact"] = _StageSpec(
        run=lambda d: solve_exact(system, k, s_hat, deadline=d, **exact_opts),
        k_bound=k,
        coverage_target=s_hat,
    )

    lp_opts = opts("lp_rounding")
    lp_opts.setdefault("seed", seed)
    specs["lp_rounding"] = _StageSpec(
        run=lambda d: lp_rounding(system, k, s_hat, deadline=d, **lp_opts),
        k_bound=None,  # rounding may exceed k by design
        coverage_target=s_hat,
    )

    specs["cwsc"] = _StageSpec(
        run=greedy_run("cwsc", cwsc, opts("cwsc")),
        k_bound=k,
        coverage_target=s_hat,
    )

    specs["cmc"] = _StageSpec(
        run=greedy_run("cmc", cmc, opts("cmc")),
        k_bound=max_sets_standard(k),
        coverage_target=COVERAGE_DISCOUNT * s_hat,
    )

    cmc_eps_opts = opts("cmc_epsilon")
    eps = cmc_eps_opts.get("eps", 1.0)
    specs["cmc_epsilon"] = _StageSpec(
        run=greedy_run("cmc_epsilon", cmc_epsilon, cmc_eps_opts),
        k_bound=max_sets_epsilon(k, eps),
        coverage_target=COVERAGE_DISCOUNT * s_hat,
    )

    specs["universal"] = _StageSpec(
        run=lambda d: universal_result(system, k, s_hat),
        k_bound=k,
        coverage_target=s_hat,
    )
    return specs


def _sanitize(
    system: SetSystem, source: CoverResult, required: int
) -> CoverResult:
    """Rebuild a result's claims from its set ids alone.

    Partial results that rode along on an exception — or candidates whose
    self-reported numbers failed verification (e.g. under injected
    marginal corruption) — may carry wrong cost/coverage/feasibility.
    The selection itself is still usable; only the claims need repair.
    """
    chosen = list(dict.fromkeys(source.set_ids))
    covered = system.coverage_of(chosen)
    return make_result(
        algorithm=source.algorithm,
        chosen=chosen,
        labels=[system[set_id].label for set_id in chosen],
        total_cost=system.cost_of(chosen),
        covered=covered,
        n_elements=system.n_elements,
        feasible=covered >= required,
        params=dict(source.params),
        metrics=source.metrics,
    )


def _backoff_seconds(
    attempt: int, base: float, cap: float, rng: random.Random
) -> float:
    """Capped exponential backoff with seeded jitter in ``[0.5x, 1x]``."""
    return min(cap, base * (2.0**attempt)) * (0.5 + 0.5 * rng.random())


def resilient_solve(
    system: SetSystem,
    k: int,
    s_hat: float,
    chain: Sequence[str] = DEFAULT_CHAIN,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    backoff_cap: float = 1.0,
    seed: int = 0,
    strict: bool = False,
    stage_options: dict[str, dict] | None = None,
    exact_node_limit: int | None = DEFAULT_EXACT_NODE_LIMIT,
    on_failure: str = "partial",
    on_stage: Callable[[str], None] | None = None,
    isolation: str = "inline",
    memory_limit_mb: int | None = None,
    backend: str | None = None,
    shards: int | None = None,
) -> CoverResult:
    """Solve with a verified fallback chain; degrade instead of crashing.

    Parameters
    ----------
    system, k, s_hat:
        The instance, exactly as for the individual solvers.
    chain:
        Stage names to try in order; known stages are ``"exact"``,
        ``"lp_rounding"``, ``"cwsc"``, ``"cmc"``, ``"cmc_epsilon"``, and
        ``"universal"``. Keep ``"universal"`` last for the feasibility
        guarantee.
    timeout:
        Overall wall-clock budget in seconds (``None`` = unlimited).
        Each remaining non-universal stage gets an equal slice of the
        remaining time; the universal stage is O(m) and always runs.
    max_retries:
        Extra attempts per stage after a
        :class:`~repro.errors.TransientSolverError`.
    backoff_base, backoff_cap:
        Exponential backoff schedule for those retries; jitter is drawn
        from a ``random.Random(seed)`` so failures replay identically.
    seed:
        Seeds both the backoff jitter and the LP rounding stage.
    strict:
        Run :meth:`SetSystem.validate_strict` on the input first.
    stage_options:
        Optional per-stage kwargs, e.g. ``{"cmc": {"b": 2.0}}``.
    exact_node_limit:
        Node budget for the exact stage (``None`` = unlimited); the
        default stops branch-and-bound from wedging an undeadlined chain.
    on_failure:
        When no stage produces a feasible verified answer:
        ``"partial"`` (default) returns the best-effort partial with
        ``feasible=False``; ``"raise"`` raises
        :class:`~repro.errors.InfeasibleError` with that partial
        attached. With ``"universal"`` in the chain and a full-coverage
        set present (the paper's standing assumption) this path is
        unreachable.
    on_stage:
        Optional callback invoked with each stage's name just before it
        runs. The pool worker uses this to stream ``stage`` frames so
        the supervisor can blame the right solver when a worker dies.
    isolation:
        ``"inline"`` (default) runs the chain in this process under
        cooperative deadlines only. ``"process"`` delegates to
        :func:`repro.resilience.pool.run_isolated`: the chain runs in a
        supervised child with a *hard* (SIGKILL-backed) timeout and an
        optional ``RLIMIT_AS`` memory guard, and worker death is retried
        then degraded to the universal fallback. Provenance then carries
        both ``params["resilience"]`` and ``params["pool"]``.
    memory_limit_mb:
        Address-space headroom for the worker (``isolation="process"``
        only; rejected inline, where it cannot be enforced).
    backend:
        Default marginal-tracker backend for the greedy stages
        (``"set"``, ``"bitset"``, ``"packed"``, ``"auto"``); an
        explicit per-stage ``stage_options`` entry wins. ``None``
        leaves each stage to the usual env/auto resolution.
    shards:
        When set (>= 1), the greedy stages (cwsc/cmc/cmc_epsilon) run
        universe-sharded across that many shard workers
        (:func:`~repro.resilience.pool.sharded.sharded_solve`) —
        identical selections and metrics, marginal updates fanned out
        to the pool. Non-greedy stages are unaffected. Shard failures
        fall back to the single-process packed backend mid-chain.

    Returns
    -------
    CoverResult
        A verified answer whose ``params["resilience"]`` records the
        winning stage, the guarantee envelope it was verified against
        (``k_bound``, ``coverage_target``), and a per-stage provenance
        list.
    """
    if not chain:
        raise ValidationError("chain must name at least one stage")
    if max_retries < 0:
        raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
    if timeout is not None and timeout <= 0:
        raise ValidationError(f"timeout must be > 0, got {timeout}")
    if on_failure not in ("partial", "raise"):
        raise ValidationError(
            f"on_failure must be 'partial' or 'raise', got {on_failure!r}"
        )
    if isolation not in ("inline", "process"):
        raise ValidationError(
            f"isolation must be 'inline' or 'process', got {isolation!r}"
        )
    if isolation == "process":
        from repro.resilience.pool.supervisor import run_isolated

        return run_isolated(
            system,
            k,
            s_hat,
            chain=chain,
            timeout=timeout,
            memory_limit_mb=memory_limit_mb,
            seed=seed,
            stage_options=stage_options,
            max_retries=max_retries,
            strict=strict,
            exact_node_limit=exact_node_limit,
            on_failure=on_failure,
            backend=backend,
            shards=shards,
        )
    if memory_limit_mb is not None:
        raise ValidationError(
            "memory_limit_mb requires isolation='process'; an in-process "
            "rlimit would take down the caller too"
        )
    if shards is not None and shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    if backend is not None:
        from repro.core.marginal import KNOWN_BACKENDS

        if backend not in KNOWN_BACKENDS:
            raise ValidationError(
                f"unknown tracker backend {backend!r}; "
                f"expected one of {', '.join(KNOWN_BACKENDS)}"
            )
    specs = _stage_specs(
        system, k, s_hat, seed, exact_node_limit, stage_options or {},
        backend=backend, shards=shards,
    )
    unknown = [name for name in chain if name not in specs]
    if unknown:
        raise ValidationError(
            f"unknown chain stage(s) {unknown}; known: {sorted(specs)}"
        )
    if strict:
        system.validate_strict()
    # A malformed REPRO_CHAOS should fail fast here, not surprise the
    # caller mid-chain at the first stage that happens to have a hook.
    faults.active()
    # Parameter validation exactly once, up front, so a chain never dies
    # on the same ValidationError five stages in a row.
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    required = system.required_coverage(s_hat)

    rng = random.Random(seed)
    overall = Deadline.after(timeout) if timeout is not None else None
    records: list[StageRecord] = []
    best_partial: CoverResult | None = None

    def note_partial(candidate: CoverResult | None) -> None:
        nonlocal best_partial
        if candidate is None:
            return
        clean = _sanitize(system, candidate, required)
        if best_partial is None:
            best_partial = clean
            return
        incumbent = (
            best_partial.feasible,
            best_partial.covered,
            -best_partial.total_cost,
        )
        challenger = (clean.feasible, clean.covered, -clean.total_cost)
        if challenger > incumbent:
            best_partial = clean

    def note_stage(record: StageRecord) -> None:
        """Mirror a finished stage record into the trace event stream."""
        if obs_trace.enabled():
            obs_trace.event(
                "chain_stage",
                stage=record.stage,
                status=record.status,
                attempts=record.attempts,
                elapsed_seconds=round(record.elapsed_seconds, 6),
            )

    def finalize(result: CoverResult, record: StageRecord, spec: _StageSpec
                 ) -> CoverResult:
        result.params["resilience"] = {
            "stage": record.stage,
            "k_bound": spec.k_bound,
            "coverage_target": spec.coverage_target,
            "stages": [r.to_dict() for r in records],
        }
        return result

    for position, name in enumerate(chain):
        spec = specs[name]
        record = StageRecord(stage=name, status="skipped")
        records.append(record)
        # The universal stage is a single O(m) scan: always allowed to
        # run, even with the overall deadline spent.
        if name != "universal" and overall is not None and overall.expired():
            record.detail = "overall deadline spent before stage started"
            note_stage(record)
            continue
        if name == "universal":
            stage_deadline = None
        elif overall is None:
            stage_deadline = None
        else:
            stages_left = sum(
                1 for later in chain[position:] if later != "universal"
            )
            stage_deadline = overall.sub(overall.remaining() / max(1, stages_left))

        if on_stage is not None:
            on_stage(name)
        stage_start = time.perf_counter()
        outcome: CoverResult | None = None
        watchdog_budget = (
            stage_deadline.remaining() if stage_deadline is not None else None
        )
        for attempt in range(max_retries + 1):
            record.attempts = attempt + 1
            try:
                with hang_watchdog(watchdog_budget, context=f"stage {name}"):
                    outcome = spec.run(stage_deadline)
                break
            except TransientSolverError as error:
                record.status = "transient_exhausted"
                record.detail = str(error)
                if attempt >= max_retries:
                    break
                delay = _backoff_seconds(
                    attempt, backoff_base, backoff_cap, rng
                )
                if overall is not None:
                    delay = min(delay, overall.remaining())
                if delay > 0:
                    time.sleep(delay)
            except DeadlineExceeded as error:
                record.status = "timeout"
                record.detail = str(error)
                note_partial(error.partial)
                break
            except InfeasibleError as error:
                record.status = "infeasible"
                record.detail = str(error)
                note_partial(error.partial)
                break
            except ValidationError:
                # A mis-parameterized stage is a caller bug, not a
                # degradable condition.
                raise
            except ReproError as error:
                record.status = "error"
                record.detail = str(error)
                break
        record.elapsed_seconds = time.perf_counter() - stage_start

        if outcome is None:
            note_stage(record)
            continue
        problems = verify_result(
            system, outcome, k=spec.k_bound, s_hat=spec.coverage_target
        )
        if problems:
            record.status = "rejected"
            record.detail = "; ".join(problems)
            note_partial(outcome)
            note_stage(record)
            continue
        if not outcome.feasible:
            record.status = "infeasible"
            record.detail = "stage returned a best-effort infeasible result"
            note_partial(outcome)
            note_stage(record)
            continue
        record.status = "ok"
        note_stage(record)
        return finalize(outcome, record, spec)

    # Every stage failed. Degrade to the best verified partial.
    fallback_spec = _StageSpec(run=lambda d: None, k_bound=None,
                               coverage_target=s_hat)
    if best_partial is None:
        best_partial = make_result(
            algorithm="resilient_solve",
            chosen=[],
            labels=[],
            total_cost=0.0,
            covered=0,
            n_elements=system.n_elements,
            feasible=required == 0,
            params={"k": k, "s_hat": s_hat},
            metrics=Metrics(),
        )
    record = StageRecord(
        stage="best_partial",
        status="ok" if best_partial.feasible else "infeasible",
        detail="degraded to best verified partial across stages",
    )
    records.append(record)
    note_stage(record)
    result = finalize(best_partial, record, fallback_spec)
    if not result.feasible and on_failure == "raise":
        raise InfeasibleError(
            "resilient_solve: no stage produced a feasible verified "
            "answer (does the system satisfy the full-coverage "
            "assumption?)",
            partial=result,
        )
    return result
