"""Benchmark regression harness (``scwsc bench``).

Runs the paper-shaped workloads under wall-clock measurement and emits a
machine-readable report (``BENCH_micro.json``) that CI diffs against a
committed baseline:

* ``bench_table5_runtime`` — every solver at the largest workload size
  (the shape behind the paper's Table 5 runtime comparison);
* ``bench_fig5_datasize`` — CWSC and CMC swept across dataset sizes
  (the shape behind Fig. 5's runtime-vs-data-size curves).

Each benchmark runs on every available marginal-tracker backend
(``set``, ``bitset``, and — with numpy >= 2.0 — ``packed``; see
:mod:`repro.core.marginal`), so the report also carries the
cross-backend speedups per workload. Per-system caches (mask table,
owners index, canonical keys, the columnar packed layout, CMC's sorted
heap entries) are warmed *explicitly* before the first measurement of
each workload (:func:`warm_system_caches`) — relying on ``warmup=1``
left the first cell of every workload paying the cache builds, which
showed up as a cold-run outlier in committed baselines. Timings then
use ``warmup`` un-timed iterations followed by ``repeat`` timed ones;
the *median* is the comparison statistic, which makes single-run noise
spikes harmless.

Two scales beyond the CI pair probe the large-``n`` regime: ``large``
(n = 10^5 LBL rows, ``bitset`` vs ``packed`` — the ``make bench-large``
/ CI smoke workload) and ``xlarge`` (a synthetic n = 10^6 universe,
packed-only, opt-in).

Regression checking is tolerance-based, not exact: CI machines jitter,
so ``--check`` only fails when a benchmark's median exceeds
``tolerance x`` its committed baseline median (default 3x). The
committed baseline lives at ``benchmarks/BENCH_baseline.json`` and is
regenerated with ``scwsc bench --quick --out
benchmarks/BENCH_baseline.json`` on a quiet machine.

``--check`` also gates *answer quality*, which does not jitter: every
cell carries a quality dict (:func:`repro.obs.quality.compute_quality`
against an LP lower bound computed once per workload size), and a cell
whose approximation ratio worsens beyond ``--quality-tolerance``
(default 1.1x) — or that turns infeasible where the baseline was
feasible — fails the check even when it got *faster*. Each bench run
additionally appends one line to ``BENCH_history.jsonl``
(``scwsc-bench-history/1``): the per-cell medians and ratios that the
dashboard (``scwsc report``) renders as trend sparklines.

The module is importable (``repro.bench.run_benchmarks``) for tests and
notebooks; ``benchmarks/harness.py`` is a thin shim for running it
without an installed console script.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.core import cmc, cmc_epsilon, cwsc
from repro.core.result import CoverResult
from repro.core.setsystem import SetSystem
from repro.errors import ReproError, ValidationError
from repro.obs import trace as obs_trace
from repro.obs.quality import compute_quality
from repro.obs.report import phase_rollups

#: Report format version; bump on incompatible layout changes.
SCHEMA = "scwsc-bench/1"

#: History-line format version (one JSON line per bench run).
HISTORY_SCHEMA = "scwsc-bench-history/1"

#: Default regression tolerance: fail only when a median is more than
#: this factor slower than the committed baseline.
DEFAULT_TOLERANCE = 3.0

#: Quality-regression tolerance: approximation ratios are deterministic
#: (no machine jitter), so the factor is much tighter than the runtime
#: one — it only absorbs legitimate tie-break changes.
DEFAULT_QUALITY_TOLERANCE = 1.1

#: Memory-regression tolerance for per-cell peak RSS. RSS is a lifetime
#: high-water mark (``ru_maxrss`` never goes down), so only genuine
#: footprint blow-ups should trip it.
DEFAULT_MEMORY_TOLERANCE = 2.0

DEFAULT_BASELINE = Path("benchmarks") / "BENCH_baseline.json"
DEFAULT_OUT = Path("BENCH_micro.json")
DEFAULT_HISTORY = Path("BENCH_history.jsonl")

#: Solve parameters shared by every benchmark (the paper grid's center).
BENCH_K = 10
BENCH_S_HAT = 0.5

_SOLVERS: dict[str, Callable[..., CoverResult]] = {
    "cwsc": lambda system, backend: cwsc(
        system, k=BENCH_K, s_hat=BENCH_S_HAT, backend=backend
    ),
    "cmc": lambda system, backend: cmc(
        system, k=BENCH_K, s_hat=BENCH_S_HAT, backend=backend
    ),
    "cmc_epsilon": lambda system, backend: cmc_epsilon(
        system, k=BENCH_K, s_hat=BENCH_S_HAT, eps=0.5, backend=backend
    ),
}

#: Workload sizes (generated LBL-trace rows) and solver pools per scale.
#: A scale may also pin its own ``backends`` (the large scales drop the
#: ``set`` backend, whose per-solve index build dominates at n >= 10^5)
#: and ``workloads`` (the large scales only run the Table-5 shape), and
#: mark itself ``synthetic`` (universe sizes beyond the LBL generator).
_SCALES: dict[str, dict] = {
    "quick": {"sizes": (600, 1200), "solvers": ("cwsc", "cmc")},
    "full": {
        "sizes": (3000, 6000, 12000),
        "solvers": ("cwsc", "cmc", "cmc_epsilon"),
    },
    "large": {
        "sizes": (100_000,),
        "solvers": ("cwsc", "cmc"),
        "backends": ("bitset", "packed"),
        "workloads": ("bench_table5_runtime",),
    },
    "xlarge": {
        "sizes": (1_000_000,),
        "solvers": ("cwsc",),
        "backends": ("packed",),
        "workloads": ("bench_table5_runtime",),
        "synthetic": True,
    },
}

BACKENDS = ("set", "bitset", "packed")

#: Skip the LP lower bound above this size: one LP solve on the
#: n = 10^5 instance costs more than the whole benchmark matrix, and the
#: large scales gate on runtime/memory, not approximation ratio.
LP_BOUND_MAX_ROWS = 20_000


def available_backends() -> tuple[str, ...]:
    """:data:`BACKENDS` minus ``packed`` when numpy lacks
    ``np.bitwise_count`` (numpy < 2.0 or absent)."""
    from repro.core.packed import HAVE_NUMPY

    if HAVE_NUMPY:
        return BACKENDS
    return tuple(b for b in BACKENDS if b != "packed")


@dataclass(frozen=True)
class BenchCase:
    """One (workload, solver, size, backend) measurement."""

    workload: str
    solver: str
    n_rows: int
    backend: str

    @property
    def bench_id(self) -> str:
        return (
            f"{self.workload}[{self.solver}-n{self.n_rows}-{self.backend}]"
        )

    @property
    def speedup_id(self) -> str:
        return f"{self.workload}[{self.solver}-n{self.n_rows}]"


def default_cases(
    scale: str,
    sizes: tuple[int, ...] | None = None,
    backends: Iterable[str] | None = None,
) -> list[BenchCase]:
    """The benchmark matrix for a scale, in deterministic order.

    ``backends=None`` takes the scale's own backend pool (falling back
    to :data:`BACKENDS`); an explicit iterable overrides it.
    """
    try:
        spec = _SCALES[scale]
    except KeyError:
        raise ValidationError(
            f"unknown bench scale {scale!r}; known: {sorted(_SCALES)}"
        ) from None
    sizes = tuple(sizes) if sizes is not None else spec["sizes"]
    if backends is None:
        backends = spec.get("backends", BACKENDS)
    backends = tuple(backends)
    workloads = spec.get(
        "workloads", ("bench_table5_runtime", "bench_fig5_datasize")
    )
    cases: list[BenchCase] = []
    if "bench_table5_runtime" in workloads:
        for solver in spec["solvers"]:
            for backend in backends:
                cases.append(
                    BenchCase(
                        "bench_table5_runtime", solver, sizes[-1], backend
                    )
                )
    if "bench_fig5_datasize" in workloads:
        for solver in ("cwsc", "cmc"):
            if solver not in spec["solvers"]:
                continue
            for n_rows in sizes:
                for backend in backends:
                    cases.append(
                        BenchCase(
                            "bench_fig5_datasize", solver, n_rows, backend
                        )
                    )
    return cases


def build_system(
    n_rows: int, seed: int = 7, synthetic: bool = False
) -> SetSystem:
    """The benchmark instance: pattern sets over an LBL-style trace, or
    the synthetic interval instance for universes beyond the generator
    (``synthetic=True``; the ``xlarge`` scale)."""
    if synthetic:
        return build_synthetic_system(n_rows, seed=seed)
    from repro.datasets.registry import load_dataset
    from repro.patterns.pattern_sets import build_set_system

    table = load_dataset(f"lbl:{n_rows}@{seed}")
    return build_set_system(table, cost="count")


def build_synthetic_system(n_elements: int, seed: int = 7) -> SetSystem:
    """A synthetic instance for the 10^6-universe regime.

    ``m = max(64, n / 8000)`` wrap-around interval sets, each about
    ``n / 10`` elements wide with ±20% jitter. Intervals keep
    construction fast (``frozenset(range(...))`` stays in C) while still
    exercising the packed kernel's full-width word sweeps, and make the
    instance feasible by construction for the shared bench parameters:
    ten sets of width ~n/10 at random offsets cover well over
    ``s_hat = 0.5`` of the universe in expectation, and the greedy
    solvers pick near-disjoint ones.
    """
    import random

    rng = random.Random(seed)
    n_sets = max(64, n_elements // 8_000)
    base_width = max(1, n_elements // 10)
    benefits: list[frozenset[int]] = []
    costs: list[float] = []
    for _ in range(n_sets):
        width = max(1, int(base_width * rng.uniform(0.8, 1.2)))
        start = rng.randrange(n_elements)
        stop = start + width
        if stop <= n_elements:
            block = frozenset(range(start, stop))
        else:
            block = frozenset(range(start, n_elements)) | frozenset(
                range(stop - n_elements)
            )
        benefits.append(block)
        costs.append(float(len(block) // 1_000 + 1))
    return SetSystem.from_iterables(n_elements, benefits, costs)


def warm_system_caches(system: SetSystem, backends: Iterable[str]) -> None:
    """Build every per-system cache a timed run would otherwise pay for.

    Called once per workload instance before its first measurement.
    Warming used to lean on ``warmup=1``, but with ``warmup=0`` — or
    when a cache is shared across cells — the *first* cell of a workload
    paid the mask-table/owners-index/canonical-key builds inside its
    timed loop and showed up as a cold-run outlier in committed
    baselines. The set is backend-aware: the packed columnar layout is
    only built when a ``packed`` cell will run, and the Python-int mask
    table only for ``set``/``bitset`` cells.
    """
    backends = set(backends)
    from repro.core.cmc import _sorted_entries
    from repro.core.greedy_common import canonical_keys

    canonical_keys(system)
    _sorted_entries(system)
    if backends & {"set", "bitset"}:
        from repro.core.bitset import mask_table, owners_index

        mask_table(system)
        owners_index(system)
    if "packed" in backends:
        from repro.core.packed import canonical_ranks, packed_layout

        packed_layout(system)
        canonical_ranks(system)


def instance_lp_bound(system: SetSystem) -> float | None:
    """The LP lower bound for the shared bench parameters, or ``None``
    when the LP solver (scipy) is unavailable or the relaxation fails.
    Costs one LP solve — callers cache it per workload size."""
    try:
        from repro.core.lp_bound import lp_lower_bound

        bound = lp_lower_bound(system, k=BENCH_K, s_hat=BENCH_S_HAT)
    except Exception:
        return None
    if bound is None or bound <= 0:
        return None
    return float(bound)


def run_case(
    system: SetSystem,
    case: BenchCase,
    repeat: int,
    warmup: int,
    lp_bound: float | None = None,
) -> dict:
    """Measure one case; returns its report entry."""
    solver = _SOLVERS[case.solver]
    runs: list[float] = []
    result: CoverResult | None = None
    phases: dict[str, dict[str, float]] = {}
    for iteration in range(warmup + repeat):
        if iteration == 0 and warmup > 0:
            # Piggyback the per-phase trace capture on the first warmup
            # iteration: the tracing overhead never touches a timed run.
            with obs_trace.capture() as records:
                result = solver(system, case.backend)
            phases = phase_rollups(records)
            continue
        started = time.perf_counter()
        result = solver(system, case.backend)
        elapsed = time.perf_counter() - started
        if iteration >= warmup:
            runs.append(elapsed)
    if not phases:  # warmup == 0: one extra un-timed traced run
        with obs_trace.capture() as records:
            result = solver(system, case.backend)
        phases = phase_rollups(records)
    assert result is not None
    from repro.obs.profile import peak_rss_bytes

    # The comparison dict deliberately excludes runtime_seconds: work
    # counters must match across backends; wall time never does.
    metrics = {
        name: value
        for name, value in result.metrics.to_dict().items()
        if name != "runtime_seconds"
    }
    return {
        "workload": case.workload,
        "solver": case.solver,
        "backend": case.backend,
        "n_rows": case.n_rows,
        "shape": {
            "n_elements": system.n_elements,
            "n_sets": system.n_sets,
        },
        "median_seconds": statistics.median(runs),
        "runs": runs,
        "metrics": metrics,
        "phases": phases,
        # Process high-water RSS when this cell finished. ru_maxrss is
        # monotone within a run, but the matrix order is deterministic,
        # so same-position cells compare meaningfully across runs.
        "peak_rss_bytes": peak_rss_bytes(),
        "result": {
            "n_sets": result.n_sets,
            "total_cost": result.total_cost,
            "covered": result.covered,
            "feasible": result.feasible,
        },
        # Kept separate from "result" (the cross-backend equality probe):
        # quality adds derived fields like the LP ratio, which tests and
        # the --check gate consume on their own.
        "quality": compute_quality(
            result, k=BENCH_K, s_hat=BENCH_S_HAT, lp_bound=lp_bound
        ),
    }


def run_benchmarks(
    scale: str = "full",
    repeat: int = 3,
    warmup: int = 1,
    backends: Iterable[str] | None = None,
    name_filter: str | None = None,
    sizes: tuple[int, ...] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the benchmark matrix and return the report dict.

    Parameters
    ----------
    scale:
        ``"quick"`` (small sizes, CI smoke), ``"full"`` (paper sizes),
        ``"large"`` (n = 10^5, bitset vs packed), or ``"xlarge"``
        (synthetic n = 10^6, packed only).
    repeat / warmup:
        Timed iterations per case / un-timed cache-warming iterations.
    backends:
        Subset of :data:`BACKENDS` to measure. ``None`` (default) takes
        the scale's backend pool intersected with
        :func:`available_backends`; requesting ``packed`` explicitly
        without numpy >= 2.0 is an error, never a silent skip.
    name_filter:
        Substring filter on bench ids (``--filter``).
    sizes:
        Override the scale's workload sizes (tests use tiny ones).
    progress:
        Optional per-case callback (the CLI prints to stderr).
    """
    if repeat < 1:
        raise ValidationError(f"repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise ValidationError(f"warmup must be >= 0, got {warmup}")
    if backends is not None:
        for backend in backends:
            if backend not in BACKENDS:
                raise ValidationError(
                    f"unknown backend {backend!r}; known: {list(BACKENDS)}"
                )
            if backend not in available_backends():
                raise ValidationError(
                    f"backend {backend!r} requires numpy >= 2.0 "
                    "(np.bitwise_count)"
                )
    cases = default_cases(scale, sizes=sizes, backends=backends)
    spec = _SCALES[scale]
    if backends is None:
        # Scale default: drop packed cells quietly when numpy is absent.
        avail = available_backends()
        cases = [c for c in cases if c.backend in avail]
    if name_filter:
        cases = [c for c in cases if name_filter in c.bench_id]
    synthetic = bool(spec.get("synthetic"))
    case_backends = tuple(dict.fromkeys(c.backend for c in cases))
    systems: dict[int, SetSystem] = {}
    lp_bounds: dict[int, float | None] = {}
    benchmarks: dict[str, dict] = {}
    for case in cases:
        if case.bench_id in benchmarks:
            continue
        system = systems.get(case.n_rows)
        if system is None:
            system = systems[case.n_rows] = build_system(
                case.n_rows, synthetic=synthetic
            )
            # Build every per-system cache up front so the first cell's
            # timed loop measures the solve, not the cache fills.
            warm_system_caches(system, case_backends)
            # One LP solve per workload size, shared by every cell on
            # it; skipped above the large-n cutoff (see LP_BOUND_MAX_ROWS).
            lp_bounds[case.n_rows] = (
                instance_lp_bound(system)
                if case.n_rows <= LP_BOUND_MAX_ROWS
                else None
            )
        entry = run_case(
            system,
            case,
            repeat=repeat,
            warmup=warmup,
            lp_bound=lp_bounds.get(case.n_rows),
        )
        benchmarks[case.bench_id] = entry
        if progress is not None:
            progress(
                f"{case.bench_id}: {entry['median_seconds'] * 1e3:.1f} ms"
            )
    return {
        "schema": SCHEMA,
        "scale": scale,
        "repeat": repeat,
        "warmup": warmup,
        "k": BENCH_K,
        "s_hat": BENCH_S_HAT,
        "python": platform.python_version(),
        "benchmarks": benchmarks,
        "speedups": _speedups(cases, benchmarks),
        "packed_speedups": _speedups(
            cases, benchmarks, fast="packed", slow="bitset"
        ),
    }


def _speedups(
    cases: list[BenchCase],
    benchmarks: dict[str, dict],
    fast: str = "bitset",
    slow: str = "set",
) -> dict[str, float]:
    """Cross-backend speedup (``slow`` median / ``fast`` median) per
    workload; a workload missing either backend is skipped."""
    speedups: dict[str, float] = {}
    for case in cases:
        if case.speedup_id in speedups or case.backend != fast:
            continue
        fast_entry = benchmarks.get(case.bench_id)
        slow_entry = benchmarks.get(
            BenchCase(case.workload, case.solver, case.n_rows, slow).bench_id
        )
        if (
            fast_entry is None
            or slow_entry is None
            or not fast_entry["median_seconds"]
        ):
            continue
        speedups[case.speedup_id] = (
            slow_entry["median_seconds"] / fast_entry["median_seconds"]
        )
    return speedups


def compare_reports(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    quality_tolerance: float = DEFAULT_QUALITY_TOLERANCE,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
) -> tuple[list[dict], list[str]]:
    """Tolerance-check a report against a baseline, on speed AND quality.

    Returns ``(regressions, missing)``: each regression records the
    bench id, a ``kind`` (``"runtime"``, ``"quality"``,
    ``"feasibility"``, or ``"memory"``), both values, and the ratio;
    ``missing`` lists baseline benchmarks the current report did not run
    (filtered out or a renamed matrix) so CI can surface them without
    failing the build.

    Runtime uses the generous ``tolerance`` (machines jitter); the
    approximation ratio uses the tight ``quality_tolerance`` (answers
    don't), and a cell that turns infeasible where the baseline was
    feasible always regresses. Per-cell peak RSS gates with
    ``memory_tolerance`` — RSS is a lifetime high-water mark, but the
    matrix order is deterministic, so same-position cells compare
    meaningfully. Baselines predating quality/memory telemetry (no
    ``quality`` / ``peak_rss_bytes`` keys) gate on runtime only.
    """
    if tolerance <= 1.0:
        raise ValidationError(
            f"tolerance must be > 1.0, got {tolerance}"
        )
    if quality_tolerance <= 1.0:
        raise ValidationError(
            f"quality tolerance must be > 1.0, got {quality_tolerance}"
        )
    if memory_tolerance <= 1.0:
        raise ValidationError(
            f"memory tolerance must be > 1.0, got {memory_tolerance}"
        )
    regressions: list[dict] = []
    missing: list[str] = []
    current_benchmarks = current.get("benchmarks", {})
    for bench_id, base in baseline.get("benchmarks", {}).items():
        entry = current_benchmarks.get(bench_id)
        if entry is None:
            missing.append(bench_id)
            continue
        base_median = base["median_seconds"]
        median = entry["median_seconds"]
        if base_median > 0 and median > tolerance * base_median:
            regressions.append(
                {
                    "kind": "runtime",
                    "bench_id": bench_id,
                    "median_seconds": median,
                    "baseline_seconds": base_median,
                    "ratio": median / base_median,
                }
            )
        base_quality = base.get("quality") or {}
        quality = entry.get("quality") or {}
        base_ratio = base_quality.get("approx_ratio")
        ratio = quality.get("approx_ratio")
        if (
            base_ratio is not None
            and ratio is not None
            and base_ratio > 0
            and ratio > quality_tolerance * base_ratio
        ):
            regressions.append(
                {
                    "kind": "quality",
                    "bench_id": bench_id,
                    "approx_ratio": ratio,
                    "baseline_ratio": base_ratio,
                    "ratio": ratio / base_ratio,
                }
            )
        if base_quality.get("feasible") and quality and not quality.get(
            "feasible"
        ):
            regressions.append(
                {
                    "kind": "feasibility",
                    "bench_id": bench_id,
                    "feasible": False,
                    "baseline_feasible": True,
                }
            )
        base_rss = base.get("peak_rss_bytes")
        rss = entry.get("peak_rss_bytes")
        if base_rss and rss and rss > memory_tolerance * base_rss:
            regressions.append(
                {
                    "kind": "memory",
                    "bench_id": bench_id,
                    "peak_rss_bytes": rss,
                    "baseline_rss_bytes": base_rss,
                    "ratio": rss / base_rss,
                }
            )
    return regressions, missing


def history_entry(report: dict, wall_time_unix: float | None = None) -> dict:
    """Condense one report into a BENCH_history.jsonl line.

    The history keeps only what trends need — per-cell median, quality
    ratio, coverage slack, feasibility, and the cross-backend speedups —
    so the file stays a few hundred bytes per run and a year of CI
    appends is still instantly loadable by the dashboard.
    """
    cells = []
    for bench_id, entry in report.get("benchmarks", {}).items():
        quality = entry.get("quality") or {}
        cells.append(
            {
                "bench_id": bench_id,
                "median_seconds": entry.get("median_seconds"),
                "approx_ratio": quality.get("approx_ratio"),
                "coverage_slack": quality.get("coverage_slack"),
                "feasible": quality.get("feasible"),
            }
        )
    return {
        "schema": HISTORY_SCHEMA,
        "wall_time_unix": (
            time.time() if wall_time_unix is None else wall_time_unix
        ),
        "scale": report.get("scale"),
        "python": report.get("python"),
        "cells": cells,
        "speedups": report.get("speedups", {}),
        "packed_speedups": report.get("packed_speedups", {}),
    }


def append_history(report: dict, path: str | Path) -> dict:
    """Append one history line for ``report``; returns the entry."""
    entry = history_entry(report)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry) + "\n")
    return entry


def render_report(report: dict) -> str:
    """Human-readable summary of a report dict."""
    lines = [
        f"scale={report['scale']} repeat={report['repeat']} "
        f"warmup={report['warmup']} k={report['k']} "
        f"s_hat={report['s_hat']:g}",
        "",
        f"{'benchmark':58s} {'median':>10s}  shape",
    ]
    for bench_id, entry in report["benchmarks"].items():
        shape = entry["shape"]
        lines.append(
            f"{bench_id:58s} {entry['median_seconds'] * 1e3:8.1f} ms"
            f"  n={shape['n_elements']} m={shape['n_sets']}"
        )
    if report["speedups"]:
        lines.append("")
        lines.append("bitset speedup over set backend (median/median):")
        for speedup_id, ratio in report["speedups"].items():
            lines.append(f"  {speedup_id:56s} {ratio:6.2f}x")
    if report.get("packed_speedups"):
        lines.append("")
        lines.append("packed speedup over bitset backend (median/median):")
        for speedup_id, ratio in report["packed_speedups"].items():
            lines.append(f"  {speedup_id:56s} {ratio:6.2f}x")
    quality_lines = []
    for bench_id, entry in report["benchmarks"].items():
        quality = entry.get("quality") or {}
        ratio = quality.get("approx_ratio")
        slack = quality.get("coverage_slack")
        if ratio is None and slack is None:
            continue
        ratio_part = "ratio      –" if ratio is None else f"ratio {ratio:6.3f}"
        slack_part = "" if slack is None else f"  cov_slack {slack:+.4f}"
        feasible_part = "" if quality.get("feasible") else "  INFEASIBLE"
        quality_lines.append(
            f"  {bench_id:56s} {ratio_part}{slack_part}{feasible_part}"
        )
    if quality_lines:
        lines.append("")
        lines.append("quality (cost / LP lower bound):")
        lines.extend(quality_lines)
    return "\n".join(lines)


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Register ``scwsc bench`` flags (shared with the shim's parser)."""
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="full",
        help="workload scale (default: full)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --scale quick (the CI smoke matrix)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timed iterations per benchmark (default: 3)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="un-timed cache-warming iterations per benchmark (default: 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("all", "both") + BACKENDS,
        default="all",
        help="marginal-tracker backend(s) to measure: 'all' (default) "
        "takes the scale's backend pool, skipping packed when numpy is "
        "absent; 'both' is the legacy set+bitset pair; or one backend "
        "by name (requesting packed without numpy >= 2.0 is an error)",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTR",
        help="only run benchmarks whose id contains this substring",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help=f"write the JSON report here (default: {DEFAULT_OUT}; "
        "'-' to skip the file)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline report for --check "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when any benchmark's median exceeds "
        "tolerance x its baseline median",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="regression factor for --check "
        f"(default: {DEFAULT_TOLERANCE:g})",
    )
    parser.add_argument(
        "--quality-tolerance",
        type=float,
        default=DEFAULT_QUALITY_TOLERANCE,
        help="approximation-ratio regression factor for --check "
        f"(default: {DEFAULT_QUALITY_TOLERANCE:g})",
    )
    parser.add_argument(
        "--memory-tolerance",
        type=float,
        default=DEFAULT_MEMORY_TOLERANCE,
        help="per-cell peak-RSS regression factor for --check "
        f"(default: {DEFAULT_MEMORY_TOLERANCE:g})",
    )
    parser.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        metavar="PATH",
        help="append one trend line per run to this JSONL file "
        f"(default: {DEFAULT_HISTORY}; used by `scwsc report`)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append to the bench history file",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span/event trace of the bench run to PATH "
        "(adds tracing overhead to timed runs; see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run (per-phase cProfile + tracemalloc); "
        "profile records land in the --trace file when one is set",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute ``scwsc bench`` from parsed arguments."""
    scale = "quick" if args.quick else args.scale
    # getattr default: hand-built Namespaces predating the packed
    # backend pick the scale's own pool, like the CLI default.
    backend_arg = getattr(args, "backend", "all")
    if backend_arg == "all":
        backends = None
    elif backend_arg == "both":
        backends = ("set", "bitset")
    else:
        backends = (backend_arg,)
    report = run_benchmarks(
        scale=scale,
        repeat=args.repeat,
        warmup=args.warmup,
        backends=backends,
        name_filter=args.name_filter,
        progress=lambda line: print(f"bench: {line}", file=sys.stderr),
    )
    print(render_report(report))
    if args.out != "-":
        out_path = Path(args.out)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"bench: report written to {out_path}", file=sys.stderr)
    # getattr defaults: tests drive this with hand-built Namespaces that
    # predate the history/quality flags.
    history_path = getattr(args, "history", str(DEFAULT_HISTORY))
    if not getattr(args, "no_history", False) and history_path != "-":
        append_history(report, history_path)
        print(
            f"bench: history appended to {history_path}", file=sys.stderr
        )
    if not args.check:
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        raise ValidationError(
            f"--check: baseline {baseline_path} does not exist; generate "
            "one with `scwsc bench --quick --out "
            f"{baseline_path}`"
        )
    baseline = json.loads(baseline_path.read_text())
    regressions, missing = compare_reports(
        report,
        baseline,
        tolerance=args.tolerance,
        quality_tolerance=getattr(
            args, "quality_tolerance", DEFAULT_QUALITY_TOLERANCE
        ),
        memory_tolerance=getattr(
            args, "memory_tolerance", DEFAULT_MEMORY_TOLERANCE
        ),
    )
    for bench_id in missing:
        print(
            f"bench: note: baseline benchmark {bench_id} was not run",
            file=sys.stderr,
        )
    if regressions:
        print(
            f"bench: {len(regressions)} regression(s):",
            file=sys.stderr,
        )
        for regression in regressions:
            kind = regression.get("kind", "runtime")
            if kind == "runtime":
                detail = (
                    f"{regression['median_seconds'] * 1e3:.1f} ms vs "
                    f"baseline {regression['baseline_seconds'] * 1e3:.1f} ms "
                    f"({regression['ratio']:.2f}x, tolerance "
                    f"{args.tolerance:g}x)"
                )
            elif kind == "quality":
                detail = (
                    f"approx ratio {regression['approx_ratio']:.4f} vs "
                    f"baseline {regression['baseline_ratio']:.4f} "
                    f"({regression['ratio']:.2f}x)"
                )
            elif kind == "memory":
                detail = (
                    f"peak RSS {regression['peak_rss_bytes'] / 2**20:.0f} "
                    f"MiB vs baseline "
                    f"{regression['baseline_rss_bytes'] / 2**20:.0f} MiB "
                    f"({regression['ratio']:.2f}x)"
                )
            else:
                detail = "infeasible result; baseline was feasible"
            print(
                f"  [{kind}] {regression['bench_id']}: {detail}",
                file=sys.stderr,
            )
        return 1
    print(
        f"bench: no regressions beyond {args.tolerance:g}x runtime / "
        f"{getattr(args, 'quality_tolerance', DEFAULT_QUALITY_TOLERANCE):g}x "
        f"quality (baseline {baseline_path})",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python benchmarks/harness.py``)."""
    parser = argparse.ArgumentParser(
        prog="scwsc-bench",
        description="benchmark regression harness for the scwsc solvers",
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    if args.trace:
        obs_trace.configure(args.trace, command="bench")
    if args.profile:
        from repro.obs import profile as obs_profile

        obs_profile.start()
    try:
        return run_from_args(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    finally:
        if args.profile:
            from repro.obs import profile as obs_profile

            obs_profile.stop()
        if args.trace:
            from repro.obs.metrics import get_registry

            obs_trace.shutdown(get_registry().snapshot())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
