"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input (set system, table, parameter) failed validation."""


class InfeasibleError(ReproError):
    """No solution satisfying the constraints exists or was found.

    Raised, e.g., by CWSC when no set clears the ``rem / i`` benefit
    threshold (Fig. 2 line 7 of the paper) and no fallback was requested,
    or by CMC on a set system without a full-coverage set.

    Attributes
    ----------
    partial:
        The best partial solution discovered before giving up, when one is
        available; otherwise ``None``. Useful for diagnostics.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class PatternSpaceError(ReproError):
    """A pattern-space operation would be intractably large.

    Full pattern enumeration materializes up to ``prod(|dom(D_i)| + 1)``
    patterns; this error is raised instead of silently attempting an
    enumeration that cannot finish.
    """
