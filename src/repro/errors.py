"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.

Every subclass carries an :attr:`ReproError.exit_code` so the CLI can map
failures to distinct, documented process exit statuses (``scwsc`` prints the
message to stderr and exits with that code). Codes are stable API:

====  =========================  =======================================
code  exception                  meaning
====  =========================  =======================================
1     ReproError                 unclassified library failure
2     ValidationError            bad input (system, table, parameter)
3     InfeasibleError            no solution found under the constraints
4     DeadlineExceeded           a deadline/timeout expired mid-solve
5     PatternSpaceError          pattern enumeration would be intractable
6     TransientSolverError       a retryable backend (LP) failure
7     ProtocolError              malformed supervisor/worker IPC frame
====  =========================  =======================================

The CLI additionally exits 130 on ``KeyboardInterrupt`` (the shell
convention for SIGINT), after flushing any partial output.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Process exit status the CLI uses for this error class.
    exit_code: int = 1


class ValidationError(ReproError, ValueError):
    """An input (set system, table, parameter) failed validation."""

    exit_code = 2


class InfeasibleError(ReproError):
    """No solution satisfying the constraints exists or was found.

    Raised, e.g., by CWSC when no set clears the ``rem / i`` benefit
    threshold (Fig. 2 line 7 of the paper) and no fallback was requested,
    or by CMC on a set system without a full-coverage set.

    Attributes
    ----------
    partial:
        The best partial solution discovered before giving up, when one is
        available; otherwise ``None``. Useful for diagnostics and for
        fallback chains that degrade instead of failing.
    """

    exit_code = 3

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class DeadlineExceeded(ReproError):
    """A cooperative deadline expired before the solve finished.

    Solvers that accept a :class:`repro.resilience.Deadline` poll it at
    checkpoints in their inner loops and raise this instead of running
    past the budget. The best partial solution found before the deadline
    is always attached so callers can degrade gracefully.

    Attributes
    ----------
    partial:
        Best-so-far :class:`~repro.core.result.CoverResult` (possibly an
        empty, infeasible one — but never ``None`` when raised by a
        library solver).
    """

    exit_code = 4

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class PatternSpaceError(ReproError):
    """A pattern-space operation would be intractably large.

    Full pattern enumeration materializes up to ``prod(|dom(D_i)| + 1)``
    patterns; this error is raised instead of silently attempting an
    enumeration that cannot finish.
    """

    exit_code = 5


class TransientSolverError(ReproError):
    """A backend failure that is plausibly transient and worth retrying.

    Raised when the LP backend reports a numerical (not structural)
    failure, or by the fault-injection layer
    (:mod:`repro.resilience.faults`) when simulating flaky backends.
    :func:`repro.resilience.resilient_solve` retries these with capped,
    seeded exponential backoff before falling through to the next stage.
    """

    exit_code = 6


class ProtocolError(ReproError):
    """A supervisor/worker IPC frame was truncated or garbage.

    Raised by :mod:`repro.resilience.pool.protocol` when a length prefix
    is implausible, a frame body is not valid JSON, or a stream ends
    mid-frame. The pool supervisor treats it as evidence the worker is
    unhealthy: the worker is killed and the in-flight request requeued
    (within its retry budget) rather than the parent process crashing.
    """

    exit_code = 7
