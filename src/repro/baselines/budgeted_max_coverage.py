"""Greedy budgeted maximum coverage [Khuller, Moss, Naor 1999].

Covers the most elements subject to a budget on total weight, greedily by
marginal gain. Section III of the paper explains why stopping this
heuristic after ``O(k)`` sets does *not* solve size-constrained weighted
set cover: on the adversarial instance of
:func:`repro.datasets.adversarial.bmc_adversarial_system` its coverage is
arbitrarily small compared to the optimum. We implement the plain greedy
rule (marginal benefit per unit cost, skipping sets that would exceed the
budget); the optional ``max_sets`` truncation realizes the paper's "stop
after ck sets" adaptation.
"""

from __future__ import annotations

import time

from repro.core.greedy_common import gain_key
from repro.core.marginal import make_tracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError


def budgeted_max_coverage(
    system: SetSystem,
    budget: float,
    max_sets: int | None = None,
) -> CoverResult:
    """Run greedy budgeted maximum coverage.

    Parameters
    ----------
    system:
        The weighted set system.
    budget:
        Upper bound on the total cost of selected sets.
    max_sets:
        Optional cap on the number of selections (the paper's "allowed to
        pick ck sets" adaptation).

    Notes
    -----
    ``feasible`` is always ``True``: the problem has no coverage target,
    only a budget, and the empty solution is valid.
    """
    if budget < 0:
        raise ValidationError(f"budget must be >= 0, got {budget}")
    if max_sets is not None and max_sets < 1:
        raise ValidationError(f"max_sets must be >= 1, got {max_sets}")
    start = time.perf_counter()
    metrics = Metrics()
    params = {"budget": budget, "max_sets": max_sets}
    tracker = make_tracker(system, metrics=metrics)
    spent = 0.0
    chosen: list[int] = []

    while max_sets is None or len(chosen) < max_sets:
        best_id = None
        best_key = None
        for set_id, size in tracker.live_items():
            if spent + system[set_id].cost > budget:
                continue
            key = gain_key(
                tracker.marginal_gain(set_id),
                size,
                system[set_id].cost,
                system[set_id].label,
                set_id,
            )
            if best_key is None or key > best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            break
        spent += system[best_id].cost
        tracker.select(best_id)
        chosen.append(best_id)

    metrics.runtime_seconds = time.perf_counter() - start
    return make_result(
        algorithm="budgeted_max_coverage",
        chosen=chosen,
        labels=[system[i].label for i in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=True,
        params=params,
        metrics=metrics,
    )
