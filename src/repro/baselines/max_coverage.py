"""Greedy partial maximum coverage — the Section VI-C baseline.

The classic ``(1 - 1/e)`` heuristic [Hochbaum 1997]: pick the ``k`` sets
with the largest marginal benefit, ignoring cost entirely. Section VI-C
reports that on LBL it returns solutions roughly 3-10x costlier than CWSC
or CMC, regardless of the coverage fraction — it optimizes coverage and
size, but not cost.
"""

from __future__ import annotations

import time

from repro.core.greedy_common import benefit_key
from repro.core.marginal import make_tracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import ValidationError

_EPS = 1e-9


def max_coverage(
    system: SetSystem,
    k: int,
    s_hat: float | None = None,
) -> CoverResult:
    """Run greedy maximum coverage with at most ``k`` sets.

    Parameters
    ----------
    system:
        The weighted set system (costs are ignored during selection but
        reported in the result).
    k:
        Number of sets to select.
    s_hat:
        Optional early-stop coverage fraction (the *partial* variant):
        selection stops once ``s_hat * n`` elements are covered.
        ``feasible`` in the result reflects whether that target was met;
        without a target the result is always feasible.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if s_hat is not None and not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    start = time.perf_counter()
    metrics = Metrics()
    params = {"k": k, "s_hat": s_hat}
    tracker = make_tracker(system, metrics=metrics)
    target = s_hat * system.n_elements if s_hat is not None else None
    chosen: list[int] = []

    for _ in range(k):
        if target is not None and tracker.covered_count >= target - _EPS:
            break
        best_id = None
        best_key = None
        for set_id, size in tracker.live_items():
            key = benefit_key(
                size, system[set_id].cost, system[set_id].label, set_id
            )
            if best_key is None or key > best_key:
                best_id = set_id
                best_key = key
        if best_id is None:
            break
        tracker.select(best_id)
        chosen.append(best_id)

    metrics.runtime_seconds = time.perf_counter() - start
    feasible = (
        target is None or tracker.covered_count >= target - _EPS
    )
    return make_result(
        algorithm="max_coverage",
        chosen=chosen,
        labels=[system[i].label for i in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=feasible,
        params=params,
        metrics=metrics,
    )
