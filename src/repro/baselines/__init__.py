"""Baseline algorithms the paper compares against (Sections III and VI-C).

Each optimizes only two of the three goals (coverage, cost, size):

* :func:`weighted_set_cover` — coverage + cost, unbounded size (Table VI).
* :func:`max_coverage` — coverage + size, ignores cost (Section VI-C).
* :func:`budgeted_max_coverage` — coverage + cost budget; truncating it at
  ``ck`` sets can have arbitrarily poor coverage (Section III).
"""

from repro.baselines.budgeted_max_coverage import budgeted_max_coverage
from repro.baselines.max_coverage import max_coverage
from repro.baselines.weighted_set_cover import weighted_set_cover

__all__ = ["budgeted_max_coverage", "max_coverage", "weighted_set_cover"]
