"""Greedy partial weighted set cover — the paper's Table VI baseline.

The classic heuristic: repeatedly pick the set with the highest marginal
gain (newly covered elements per unit cost) until the coverage target is
met. It optimizes cost and coverage but has *no size constraint*, which is
exactly the limitation Table VI demonstrates: as the coverage fraction
grows, the number of selected patterns far exceeds any reasonable ``k``.

Unlike CWSC (bounded by ``k`` iterations) this heuristic can select
hundreds of sets, so the argmax uses a lazy heap: marginal benefits only
shrink, so a popped entry whose recorded size is still current is a true
maximum (the CELF argument). The heap keys encode the same tie-break
order as :func:`repro.core.greedy_common.gain_key` — gain, then marginal
size, then lower cost, then the canonical label key — and staleness is
detected on the (integer) marginal size, never on float gains.
"""

from __future__ import annotations

import heapq
import time

from repro.core.greedy_common import canonical_key
from repro.core.marginal import make_tracker
from repro.core.result import CoverResult, Metrics, make_result
from repro.core.setsystem import SetSystem
from repro.errors import InfeasibleError, ValidationError

_EPS = 1e-9


def weighted_set_cover(
    system: SetSystem,
    s_hat: float,
    max_sets: int | None = None,
) -> CoverResult:
    """Run the greedy partial weighted set cover heuristic.

    Parameters
    ----------
    system:
        The weighted set system.
    s_hat:
        Required coverage fraction.
    max_sets:
        Optional hard stop on the number of selections (not part of the
        classic heuristic; exposed so experiments can truncate it). With
        the default ``None`` the heuristic runs until the target is met.

    Raises
    ------
    InfeasibleError
        If the union of all sets cannot reach the target (or the
        ``max_sets`` truncation fired first).
    """
    if not (0.0 <= s_hat <= 1.0):
        raise ValidationError(f"s_hat must be in [0, 1], got {s_hat}")
    if max_sets is not None and max_sets < 1:
        raise ValidationError(f"max_sets must be >= 1, got {max_sets}")
    start = time.perf_counter()
    metrics = Metrics()
    params = {"s_hat": s_hat, "max_sets": max_sets}
    tracker = make_tracker(system, metrics=metrics)
    rem = s_hat * system.n_elements
    chosen: list[int] = []

    # Lazy max-gain heap: heapq pops the smallest tuple, so gains are
    # negated; ties resolve toward larger size, lower cost, smaller
    # canonical key (matching greedy_common.gain_key).
    heap: list[tuple] = []
    for set_id, size in tracker.live_items():
        ws = system[set_id]
        heap.append(
            (
                -tracker.marginal_gain(set_id),
                -size,
                ws.cost,
                canonical_key(ws.label, set_id),
                set_id,
                size,
            )
        )
    heapq.heapify(heap)

    while rem > _EPS:
        best_id = None
        while heap:
            entry = heapq.heappop(heap)
            set_id, recorded_size = entry[4], entry[5]
            current = tracker.marginal_size(set_id)
            if current == 0:
                continue
            if current != recorded_size:
                ws = system[set_id]
                heapq.heappush(
                    heap,
                    (
                        -tracker.marginal_gain(set_id),
                        -current,
                        ws.cost,
                        canonical_key(ws.label, set_id),
                        set_id,
                        current,
                    ),
                )
                continue
            best_id = set_id
            break
        if best_id is None or (max_sets is not None and len(chosen) >= max_sets):
            metrics.runtime_seconds = time.perf_counter() - start
            partial = make_result(
                algorithm="weighted_set_cover",
                chosen=chosen,
                labels=[system[i].label for i in chosen],
                total_cost=system.cost_of(chosen),
                covered=system.coverage_of(chosen),
                n_elements=system.n_elements,
                feasible=False,
                params=params,
                metrics=metrics,
            )
            raise InfeasibleError(
                "weighted_set_cover: coverage target unreachable "
                f"({rem:.2f} elements short)",
                partial=partial,
            )
        rem -= tracker.select(best_id)
        chosen.append(best_id)

    metrics.runtime_seconds = time.perf_counter() - start
    return make_result(
        algorithm="weighted_set_cover",
        chosen=chosen,
        labels=[system[i].label for i in chosen],
        total_cost=system.cost_of(chosen),
        covered=system.coverage_of(chosen),
        n_elements=system.n_elements,
        feasible=True,
        params=params,
        metrics=metrics,
    )
