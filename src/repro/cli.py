"""Command-line interface.

Three subcommands:

* ``list`` — show the available paper experiments;
* ``run`` — regenerate a paper table/figure (or ``all`` of them);
* ``solve`` — run size-constrained weighted set cover on a CSV of records.

Examples::

    scwsc list
    scwsc run fig5 --scale full
    scwsc solve data.csv --attributes Type,Location --measure Cost \\
        -k 2 -s 0.5625 --algorithm cwsc
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.experiments import available_experiments, run_experiment
from repro.patterns.costs import get_cost_function
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.table import PatternTable


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scwsc",
        description=(
            "Size-Constrained Weighted Set Cover (Golab et al., ICDE 2015) "
            "— reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available paper experiments")

    run_parser = commands.add_parser(
        "run", help="regenerate a paper table/figure"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from `scwsc list`, or `all`",
    )
    run_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale (default: full)",
    )
    run_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the report to a file",
    )

    solve_parser = commands.add_parser(
        "solve", help="solve an instance from a CSV of records"
    )
    solve_parser.add_argument("csv", help="input CSV with a header row")
    solve_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    solve_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column for pattern costs (omit for count-based costs)",
    )
    solve_parser.add_argument(
        "-k", type=int, required=True, help="maximum number of patterns"
    )
    solve_parser.add_argument(
        "-s",
        "--coverage",
        type=float,
        required=True,
        help="required coverage fraction in [0, 1]",
    )
    solve_parser.add_argument(
        "--algorithm",
        choices=("cwsc", "cmc", "exact"),
        default="cwsc",
        help="cwsc: at most k patterns; cmc: up to (1+eps)k with bounds; "
        "exact: branch-and-bound optimum (small inputs only)",
    )
    solve_parser.add_argument(
        "--cost",
        default=None,
        help="cost function: max (default with a measure), sum, mean, "
        "count, l2",
    )
    solve_parser.add_argument(
        "-b", type=float, default=1.0, help="CMC budget growth factor"
    )
    solve_parser.add_argument(
        "--eps", type=float, default=1.0, help="CMC solution-size slack"
    )
    solve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON instead of text",
    )
    solve_parser.add_argument(
        "--sql",
        action="store_true",
        help="also print the solution as a SQL query over the input",
    )

    info_parser = commands.add_parser(
        "info", help="profile a CSV: domains, skew, pattern space"
    )
    info_parser.add_argument("csv", help="input CSV with a header row")
    info_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    info_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column to profile as the measure",
    )

    demo_parser = commands.add_parser(
        "demo",
        help="run the algorithms on a bundled synthetic dataset",
    )
    demo_parser.add_argument(
        "--dataset",
        default="lbl:5000",
        help="name[:rows][@seed]; names: lbl, census, entities "
        "(default: lbl:5000)",
    )
    demo_parser.add_argument(
        "-k", type=int, default=8, help="maximum number of patterns"
    )
    demo_parser.add_argument(
        "-s", "--coverage", type=float, default=0.4,
        help="required coverage fraction",
    )
    demo_parser.add_argument(
        "--unoptimized",
        action="store_true",
        help="also run the enumeration-based algorithms and the LP bound",
    )

    report_parser = commands.add_parser(
        "report",
        help="run every experiment and emit a markdown report",
    )
    report_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale (default: full)",
    )
    report_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="write the markdown to a file instead of stdout",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_solve(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_list() -> int:
    for experiment_id, description in available_experiments().items():
        print(f"{experiment_id:16s} {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = (
        list(available_experiments())
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks = []
    for experiment_id in ids:
        report = run_experiment(experiment_id, scale=args.scale)
        chunks.append(report.text)
    output = "\n\n".join(chunks)
    print(output)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    cost_name = args.cost or ("max" if args.measure else "count")
    cost = get_cost_function(cost_name)
    if args.algorithm == "cwsc":
        result = optimized_cwsc(
            table, args.k, args.coverage, cost=cost,
            on_infeasible="full_cover",
        )
    elif args.algorithm == "exact":
        from repro.core.exact import solve_exact
        from repro.core.preprocess import remove_dominated
        from repro.patterns.pattern_sets import build_set_system

        system = remove_dominated(build_set_system(table, cost))
        result = solve_exact(system, args.k, args.coverage)
    else:
        result = optimized_cmc(
            table, args.k, args.coverage, b=args.b, cost=cost, eps=args.eps
        )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(result.summary())
    for pattern in result.labels:
        print(f"  {pattern.format(attributes)}")
    if args.sql:
        from repro.patterns.sql import solution_to_sql

        print()
        print(solution_to_sql(result, attributes, table_name="records"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.patterns.stats import profile_table

    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    print(profile_table(table).render())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis import compare_algorithms
    from repro.datasets.registry import load_dataset
    from repro.patterns.stats import profile_table

    table = load_dataset(args.dataset)
    print(f"dataset {args.dataset}:")
    print(profile_table(table).render())
    print(
        f"\ncomparing algorithms (k={args.k}, s={args.coverage:g}):"
    )
    comparison = compare_algorithms(
        table,
        args.k,
        args.coverage,
        include_unoptimized=args.unoptimized,
        include_lp_bound=args.unoptimized,
    )
    print(comparison.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    lines = [
        "# Size-Constrained Weighted Set Cover — regenerated artifacts",
        "",
        f"Scale: `{args.scale}`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each shape.",
        "",
    ]
    for experiment_id in available_experiments():
        report = run_experiment(experiment_id, scale=args.scale)
        lines.append(f"## {report.title} ({experiment_id})")
        lines.append("")
        lines.append("```")
        lines.append(report.text)
        lines.append("```")
        lines.append("")
    output = "\n".join(lines)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    else:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
