"""Command-line interface.

Subcommands:

* ``list`` — show the available paper experiments;
* ``run`` — regenerate a paper table/figure (or ``all`` of them), with
  per-cell checkpointing, ``--resume`` for interrupted sweeps, and
  ``--workers N`` to fan cells out over a supervised process pool;
* ``solve`` — run size-constrained weighted set cover on a CSV of
  records, optionally under a ``--timeout`` and/or resilient
  ``--fallback`` chain, or fully process-isolated with ``--isolate``
  (see docs/RESILIENCE.md);
* ``batch`` — execute a JSONL stream of solve requests against one CSV
  on the worker pool, emitting one JSONL result (with provenance) per
  request as it completes;
* ``bench`` — run the benchmark regression harness
  (:mod:`repro.bench`): paper-shaped workloads on both marginal-tracker
  backends, JSON report, tolerance check against a committed baseline;
* ``trace`` — summarize (with per-phase self time), schema-validate, or
  flamegraph-export a JSONL trace produced with ``--trace`` (available
  on ``run``, ``solve``, ``batch``, ``bench``, which also take
  ``--profile`` for per-phase cProfile/tracemalloc records; see
  docs/OBSERVABILITY.md);
* ``report`` — with a trace argument, render the run dashboard: a
  single self-contained HTML file with the span waterfall, self-time
  table, quality panel, and bench-history sparklines (``scwsc report
  run.jsonl -o report.html``); without one, regenerate the markdown
  experiment report as before;
* ``serve`` — run the fault-tolerant solver daemon: a warm supervised
  pool behind an HTTP front door with admission control, per-tenant
  rate limits, per-request deadlines, end-to-end request tracing, SLO
  burn-rate gauges, a JSONL access log (``--access-log``), and SIGTERM
  graceful drain (see docs/SERVING.md);
* ``top`` — live terminal console over a running daemon's ``/metrics``:
  in-flight/QPS, latency percentiles, SLO burn, shed reasons, breaker
  states, worker RSS (``scwsc top http://127.0.0.1:8080``).

Examples::

    scwsc list
    scwsc run fig5 --scale full
    scwsc run table4 --scale small --resume --workers 4
    scwsc solve data.csv --attributes Type,Location --measure Cost \\
        -k 2 -s 0.5625 --algorithm cwsc
    scwsc solve data.csv --attributes Type,Location -k 2 -s 0.5 \\
        --timeout 5 --fallback exact,cwsc,universal
    scwsc solve data.csv --attributes Type,Location -k 2 -s 0.5 \\
        --timeout 5 --isolate --memory-limit 512
    scwsc batch requests.jsonl --csv data.csv \\
        --attributes Type,Location --workers 4 --out results.jsonl

Failures map to documented exit codes (see :mod:`repro.errors`): 2 for
bad input, 3 for infeasible, 4 for a blown deadline, 5 for an
intractable pattern space, 6 for a transient backend failure, 7 for a
supervisor/worker protocol error; the message goes to stderr. An
interrupt (Ctrl-C) exits 130, and SIGTERM exits 143, both after
flushing whatever checkpoints and result lines were already complete —
SIGTERM gets the same drain-and-flush treatment as Ctrl-C instead of
killing the process mid-write.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.errors import ReproError, ValidationError
from repro.experiments import available_experiments, run_experiment
from repro.patterns.costs import get_cost_function
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.table import PatternTable


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL span/event trace of this run to PATH "
        "(inspect with `scwsc trace summarize`; see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run: per-phase cProfile + tracemalloc, emitted "
        "as `profile` records into the --trace file (and rendered by "
        "`scwsc report`)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scwsc",
        description=(
            "Size-Constrained Weighted Set Cover (Golab et al., ICDE 2015) "
            "— reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available paper experiments")

    run_parser = commands.add_parser(
        "run", help="regenerate a paper table/figure"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from `scwsc list`, or `all`",
    )
    run_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale (default: full)",
    )
    run_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the report to a file",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the experiment's checkpoint instead of "
        "recomputing completed cells",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default=".scwsc-checkpoints",
        help="directory for per-experiment checkpoint files "
        "(default: .scwsc-checkpoints)",
    )
    run_parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable checkpoint snapshots entirely",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run experiment cells on a supervised process pool of this "
        "size (0 = in-process; composes with --resume)",
    )
    _add_trace_argument(run_parser)

    solve_parser = commands.add_parser(
        "solve", help="solve an instance from a CSV of records"
    )
    solve_parser.add_argument("csv", help="input CSV with a header row")
    solve_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    solve_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column for pattern costs (omit for count-based costs)",
    )
    solve_parser.add_argument(
        "-k", type=int, required=True, help="maximum number of patterns"
    )
    solve_parser.add_argument(
        "-s",
        "--coverage",
        type=float,
        required=True,
        help="required coverage fraction in [0, 1]",
    )
    solve_parser.add_argument(
        "--algorithm",
        choices=("cwsc", "cmc", "exact"),
        default="cwsc",
        help="cwsc: at most k patterns; cmc: up to (1+eps)k with bounds; "
        "exact: branch-and-bound optimum (small inputs only)",
    )
    solve_parser.add_argument(
        "--cost",
        default=None,
        help="cost function: max (default with a measure), sum, mean, "
        "count, l2",
    )
    solve_parser.add_argument(
        "-b", type=float, default=1.0, help="CMC budget growth factor"
    )
    solve_parser.add_argument(
        "--eps", type=float, default=1.0, help="CMC solution-size slack"
    )
    solve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock budget in seconds; the solve degrades through "
        "the resilient fallback chain instead of overrunning",
    )
    solve_parser.add_argument(
        "--fallback",
        nargs="?",
        const="default",
        default=None,
        metavar="CHAIN",
        help="solve via the resilient fallback chain; optionally a "
        "comma-separated stage list (exact, lp_rounding, cwsc, cmc, "
        "cmc_epsilon, universal). Bare --fallback uses the default "
        "chain",
    )
    solve_parser.add_argument(
        "--isolate",
        action="store_true",
        help="run the solve in a supervised worker process with a hard "
        "(SIGKILL-backed) timeout; worker death is retried and degraded "
        "instead of crashing",
    )
    solve_parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="MB",
        help="address-space headroom for the isolated worker "
        "(requires --isolate)",
    )
    solve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON instead of text",
    )
    solve_parser.add_argument(
        "--sql",
        action="store_true",
        help="also print the solution as a SQL query over the input",
    )
    _add_trace_argument(solve_parser)

    batch_parser = commands.add_parser(
        "batch",
        help="run a JSONL stream of solve requests on the worker pool",
    )
    batch_parser.add_argument(
        "requests",
        help="JSONL file of requests ('-' for stdin); each line is an "
        'object like {"k": 3, "s": 0.5, "solver": "resilient", '
        '"tag": "cell-1"}',
    )
    batch_parser.add_argument(
        "--csv", required=True, help="input CSV with a header row"
    )
    batch_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    batch_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column for pattern costs (omit for count-based costs)",
    )
    batch_parser.add_argument(
        "--cost",
        default=None,
        help="cost function: max (default with a measure), sum, mean, "
        "count, l2",
    )
    batch_parser.add_argument(
        "--out",
        default=None,
        help="write JSONL results here instead of stdout (flushed per "
        "line, so partial output survives an interrupt)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    batch_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request budget in seconds for requests that do not "
        "set their own (enforced with SIGKILL plus a grace period)",
    )
    batch_parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="MB",
        help="address-space headroom per worker",
    )
    _add_trace_argument(batch_parser)

    info_parser = commands.add_parser(
        "info", help="profile a CSV: domains, skew, pattern space"
    )
    info_parser.add_argument("csv", help="input CSV with a header row")
    info_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    info_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column to profile as the measure",
    )

    demo_parser = commands.add_parser(
        "demo",
        help="run the algorithms on a bundled synthetic dataset",
    )
    demo_parser.add_argument(
        "--dataset",
        default="lbl:5000",
        help="name[:rows][@seed]; names: lbl, census, entities "
        "(default: lbl:5000)",
    )
    demo_parser.add_argument(
        "-k", type=int, default=8, help="maximum number of patterns"
    )
    demo_parser.add_argument(
        "-s", "--coverage", type=float, default=0.4,
        help="required coverage fraction",
    )
    demo_parser.add_argument(
        "--unoptimized",
        action="store_true",
        help="also run the enumeration-based algorithms and the LP bound",
    )

    bench_parser = commands.add_parser(
        "bench",
        help="run the benchmark regression harness (see docs/PERFORMANCE.md)",
    )
    from repro.bench import add_bench_arguments

    add_bench_arguments(bench_parser)

    trace_parser = commands.add_parser(
        "trace",
        help="inspect a JSONL trace written with --trace",
    )
    trace_commands = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    trace_summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase rollup: time per phase, budget-round chart, "
        "event tallies, final metrics snapshot",
    )
    trace_summarize.add_argument("path", help="trace JSONL file")
    trace_summarize.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the rollup as JSON instead of the text tables",
    )
    trace_validate = trace_commands.add_parser(
        "validate",
        help="validate every record against the scwsc-trace/1 schema",
    )
    trace_validate.add_argument("path", help="trace JSONL file")
    trace_validate.add_argument(
        "--strict",
        action="store_true",
        help="also fail on orphan spans (a parent_id that names a span "
        "absent from the file) — enforces the zero-orphan stitching "
        "guarantee, not just record shapes",
    )
    trace_flamegraph = trace_commands.add_parser(
        "flamegraph",
        help="export collapsed stacks (flamegraph.pl / speedscope input) "
        "from the span tree and any --profile samples",
    )
    trace_flamegraph.add_argument("path", help="trace JSONL file")
    trace_flamegraph.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the collapsed stacks here instead of stdout",
    )

    report_parser = commands.add_parser(
        "report",
        help="render a trace into an HTML run dashboard, or (with no "
        "trace) run every experiment and emit a markdown report",
    )
    report_parser.add_argument(
        "trace_file",
        nargs="?",
        default=None,
        metavar="TRACE",
        help="JSONL trace to render as a self-contained HTML dashboard; "
        "omit for the markdown experiment report",
    )
    report_parser.add_argument(
        "-o",
        "--output",
        default="report.html",
        metavar="PATH",
        help="HTML output path for the dashboard (default: report.html)",
    )
    report_parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="bench history JSONL for the trend panel "
        "(default: BENCH_history.jsonl when it exists)",
    )
    report_parser.add_argument(
        "--title",
        default="scwsc run report",
        help="dashboard page title",
    )
    report_parser.add_argument(
        "--postmortem",
        action="append",
        default=None,
        metavar="BUNDLE",
        help="scwsc-postmortem/1 bundle JSON to render in the dashboard's "
        "postmortem panel (repeatable; also accepts a spool directory)",
    )
    report_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale for the markdown report (default: full)",
    )
    report_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="write the markdown report to a file instead of stdout",
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the solver daemon: warm worker pool, HTTP solve/batch "
        "endpoints, admission control, graceful drain (docs/SERVING.md)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks a free port, printed in the boot line "
        "(default: 8080)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    serve_parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="MB",
        help="address-space headroom per worker",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="global cap on admitted-but-unanswered requests; beyond it "
        "requests shed with 429 (default: 16)",
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="cap on the dispatch backlog (default: 64)",
    )
    serve_parser.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        help="end-to-end budget in seconds for requests without their "
        "own (default: 30)",
    )
    serve_parser.add_argument(
        "--max-deadline",
        type=float,
        default=300.0,
        help="largest per-request deadline honored (default: 300)",
    )
    serve_parser.add_argument(
        "--tenant-rate",
        type=float,
        default=50.0,
        help="per-tenant sustained requests/second (default: 50)",
    )
    serve_parser.add_argument(
        "--tenant-burst",
        type=float,
        default=100.0,
        help="per-tenant token-bucket burst (default: 100)",
    )
    serve_parser.add_argument(
        "--tenant-inflight",
        type=int,
        default=8,
        help="per-tenant concurrent-request cap (default: 8)",
    )
    serve_parser.add_argument(
        "--read-timeout",
        type=float,
        default=10.0,
        help="socket timeout for reading a request; slow clients are "
        "dropped (default: 10)",
    )
    serve_parser.add_argument(
        "--grace",
        type=float,
        default=1.0,
        help="SIGKILL slack past a request's deadline (default: 1)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="on SIGTERM, how long to wait for in-flight work "
        "(default: 30)",
    )
    serve_parser.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="write one scwsc-access/1 JSONL record per HTTP request "
        "(see docs/OBSERVABILITY.md)",
    )
    serve_parser.add_argument(
        "--slo-latency-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="latency SLO threshold in seconds (default: 1.0)",
    )
    serve_parser.add_argument(
        "--slo-latency-objective",
        type=float,
        default=0.99,
        help="fraction of requests that must finish under the latency "
        "threshold (default: 0.99)",
    )
    serve_parser.add_argument(
        "--slo-error-objective",
        type=float,
        default=0.999,
        help="fraction of requests that must avoid 5xx (default: 0.999)",
    )
    serve_parser.add_argument(
        "--no-flightrec",
        action="store_true",
        help="disarm the always-on flight-recorder ring buffers",
    )
    serve_parser.add_argument(
        "--no-debug-endpoints",
        action="store_true",
        help="disable the loopback-only GET /debug/* introspection routes",
    )
    serve_parser.add_argument(
        "--postmortem-dir",
        default=None,
        metavar="DIR",
        help="spool directory for triggered scwsc-postmortem/1 bundles "
        "(worker death, breaker open, SLO fast-burn, 5xx); unset "
        "disables triggered bundles",
    )
    serve_parser.add_argument(
        "--postmortem-interval",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-trigger-kind rate limit between bundles (default: 60)",
    )
    serve_parser.add_argument(
        "--postmortem-max-bytes",
        type=int,
        default=16 * 1024 * 1024,
        metavar="BYTES",
        help="postmortem spool byte cap, oldest deleted first "
        "(default: 16MiB)",
    )
    serve_parser.add_argument(
        "--postmortem-max-bundles",
        type=int,
        default=20,
        help="postmortem spool bundle-count cap (default: 20)",
    )
    serve_parser.add_argument(
        "--sampler-hz",
        type=float,
        default=0.0,
        help="continuous stack-sampler frequency; 0 keeps it idle and "
        "leaves only on-demand/trigger bursts (default: 0)",
    )
    _add_trace_argument(serve_parser)

    top_parser = commands.add_parser(
        "top",
        help="live terminal console over a running daemon's /metrics: "
        "in-flight, QPS, latency percentiles, SLO burn, sheds, breakers",
    )
    top_parser.add_argument(
        "url",
        help="daemon base URL or /metrics URL, e.g. http://127.0.0.1:8080",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between scrapes (default: 2)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no TTY required)",
    )

    debug_parser = commands.add_parser(
        "debug",
        help="work with scwsc-postmortem/1 flight-recorder bundles: "
        "assemble, inspect, validate (docs/OBSERVABILITY.md §12)",
    )
    debug_commands = debug_parser.add_subparsers(
        dest="debug_command", required=True
    )
    debug_bundle = debug_commands.add_parser(
        "bundle",
        help="assemble a manual postmortem bundle from this process "
        "(stack burst + metrics + rings), redacted by default",
    )
    debug_bundle.add_argument(
        "-o",
        "--output",
        default="postmortem-manual.json",
        metavar="PATH",
        help="bundle output path (default: postmortem-manual.json)",
    )
    debug_bundle.add_argument(
        "--reason",
        default="manual bundle via scwsc debug bundle",
        help="reason string recorded in the bundle",
    )
    debug_bundle.add_argument(
        "--no-redact",
        action="store_true",
        help="skip credential redaction (bundles redact by default so "
        "they are safe to attach to tickets)",
    )
    debug_inspect = debug_commands.add_parser(
        "inspect",
        help="pretty-print a bundle: trigger, build, ring occupancy, "
        "recent events, hottest sampled stacks",
    )
    debug_inspect.add_argument("path", help="bundle JSON file")
    debug_inspect.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full (redacted) bundle as indented JSON",
    )
    debug_validate = debug_commands.add_parser(
        "validate",
        help="validate bundles against the scwsc-postmortem/1 schema "
        "(ring records are re-checked against their own schemas)",
    )
    debug_validate.add_argument(
        "paths", nargs="+", metavar="BUNDLE", help="bundle JSON file(s)"
    )
    return parser


class _Terminated(KeyboardInterrupt):
    """SIGTERM, surfaced through the KeyboardInterrupt cleanup path.

    Subclassing ``KeyboardInterrupt`` reuses every flush-and-unwind
    path the codebase already has for Ctrl-C (checkpoint stores flush
    per put, ``batch`` flushes per result line, pool context managers
    close their workers), while letting :func:`main` report the
    conventional 128+SIGTERM exit code instead of 130.
    """


def _install_sigterm_drain() -> object | None:
    """Route SIGTERM through :class:`_Terminated`; returns the previous
    handler (``None`` when not running in the main thread)."""

    def _on_sigterm(signum: int, frame) -> None:
        raise _Terminated()

    try:
        return signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread (embedded use); skip
        return None


def main(argv: list[str] | None = None) -> int:
    from repro.obs.log import console_logging
    from repro.obs.metrics import publish_build_info

    parser = build_parser()
    args = parser.parse_args(argv)
    console_logging()
    publish_build_info()
    # `serve` owns its signals (drain handshake inside run_server);
    # every other command gets the same clean SIGTERM exit as Ctrl-C.
    previous_sigterm = (
        None if args.command == "serve" else _install_sigterm_drain()
    )
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import trace as obs_trace

        obs_trace.configure(
            trace_path,
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
    profiling = getattr(args, "profile", False)
    if profiling:
        from repro.obs import profile as obs_profile

        obs_profile.start()
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            from repro.bench import run_from_args

            return run_from_args(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "top":
            from repro.obs.console import run_top

            return run_top(args.url, interval=args.interval, once=args.once)
        if args.command == "debug":
            return _cmd_debug(args)
        return _cmd_solve(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    except OSError as error:
        # Unreadable/unwritable input or output file: bad input.
        print(f"error: {error}", file=sys.stderr)
        return ValidationError.exit_code
    except _Terminated:
        # Same drain-and-flush guarantees as Ctrl-C below, reported
        # with the conventional 128+SIGTERM.
        print("terminated; partial results are flushed", file=sys.stderr)
        return 143
    except KeyboardInterrupt:
        # Checkpoint stores flush after every put and `batch` flushes
        # each result line, so everything completed so far is already on
        # disk; report the interrupt with the conventional 128+SIGINT.
        print("interrupted; partial results are flushed", file=sys.stderr)
        return 130
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        if profiling:
            from repro.obs import profile as obs_profile

            # Stop before trace shutdown: the profile records belong
            # inside the trace file, ahead of its closing metrics record.
            obs_profile.stop()
        if trace_path:
            from repro.obs import trace as obs_trace
            from repro.obs.metrics import get_registry

            # Close the trace with a metrics snapshot so the file is
            # self-contained even if the command errored out.
            obs_trace.shutdown(get_registry().snapshot())


def _cmd_list() -> int:
    for experiment_id, description in available_experiments().items():
        print(f"{experiment_id:16s} {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.base import CheckpointStore

    ids = (
        list(available_experiments())
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks = []
    for experiment_id in ids:
        store = None
        if not args.no_checkpoint:
            path = (
                Path(args.checkpoint_dir)
                / f"{experiment_id}-{args.scale}.json"
            )
            store = CheckpointStore(path)
            if args.resume:
                if len(store):
                    print(
                        f"resuming {experiment_id} from {path} "
                        f"({len(store)} cell(s) done)",
                        file=sys.stderr,
                    )
            else:
                store.clear()
        report = run_experiment(
            experiment_id,
            scale=args.scale,
            checkpoint=store,
            workers=args.workers,
        )
        chunks.append(report.text)
    output = "\n\n".join(chunks)
    print(output)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    cost_name = args.cost or ("max" if args.measure else "count")
    cost = get_cost_function(cost_name)
    if args.memory_limit is not None and not args.isolate:
        raise ValidationError("--memory-limit requires --isolate")
    if args.fallback is not None or args.timeout is not None or args.isolate:
        result = _solve_resilient(args, table, cost)
    elif args.algorithm == "cwsc":
        result = optimized_cwsc(
            table, args.k, args.coverage, cost=cost,
            on_infeasible="full_cover",
        )
    elif args.algorithm == "exact":
        from repro.core.exact import solve_exact
        from repro.core.preprocess import remove_dominated
        from repro.patterns.pattern_sets import build_set_system

        system = remove_dominated(build_set_system(table, cost))
        result = solve_exact(system, args.k, args.coverage)
    else:
        result = optimized_cmc(
            table, args.k, args.coverage, b=args.b, cost=cost, eps=args.eps
        )
    from repro.obs.metrics import record_cover_result

    record_cover_result(result)
    provenance = result.params.get("resilience")
    if args.json:
        payload = result.to_dict()
        if provenance is not None:
            payload["resilience"] = provenance
        pool_provenance = result.params.get("pool")
        if pool_provenance is not None:
            payload["pool"] = pool_provenance
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary())
    for pattern in result.labels:
        print(f"  {pattern.format(attributes)}")
    pool_provenance = result.params.get("pool")
    if pool_provenance is not None:
        attempts = pool_provenance.get("attempts", [])
        print(
            f"pool: {len(attempts)} attempt(s), "
            f"{pool_provenance.get('requeues', 0)} requeue(s)"
        )
        for attempt in attempts:
            line = (
                f"  attempt {attempt['attempt']} "
                f"(worker {attempt['worker']}): {attempt['outcome']}"
            )
            if attempt.get("detail"):
                line += f" ({attempt['detail']})"
            print(line)
    if provenance is not None:
        print(f"resilience: answered by stage {provenance['stage']!r}")
        for record in provenance["stages"]:
            line = f"  {record['stage']:12s} {record['status']}"
            if record["detail"]:
                line += f" ({record['detail']})"
            print(line)
    if args.sql:
        from repro.patterns.sql import solution_to_sql

        print()
        print(solution_to_sql(result, attributes, table_name="records"))
    return 0


def _solve_resilient(args: argparse.Namespace, table, cost):
    """``scwsc solve`` under the resilient harness.

    Triggered by ``--timeout``, ``--fallback``, and/or ``--isolate``.
    Runs on the fully enumerated set system so every chain stage is
    available; infeasible outcomes surface as :class:`InfeasibleError`
    (exit code 3), blown overall deadlines as partial degradation inside
    the chain rather than a crash. With ``--isolate`` the chain runs in
    a supervised worker process, making the timeout hard and the memory
    limit enforceable.
    """
    from repro.patterns.pattern_sets import build_set_system
    from repro.resilience import DEFAULT_CHAIN, resilient_solve

    if args.fallback is None or args.fallback == "default":
        chain = {
            "cwsc": ("cwsc", "universal"),
            "cmc": ("cmc_epsilon", "universal"),
            "exact": ("exact", "cwsc", "universal"),
        }[args.algorithm] if args.fallback is None else DEFAULT_CHAIN
    else:
        chain = tuple(
            name.strip() for name in args.fallback.split(",") if name.strip()
        )
    system = build_set_system(table, cost)
    return resilient_solve(
        system,
        args.k,
        args.coverage,
        chain=chain,
        timeout=args.timeout,
        stage_options={
            "cmc": {"b": args.b},
            "cmc_epsilon": {"b": args.b, "eps": args.eps},
        },
        on_failure="raise",
        isolation="process" if args.isolate else "inline",
        memory_limit_mb=args.memory_limit,
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    """``scwsc batch``: JSONL requests in, JSONL results out.

    Every input line is one solve request against the shared CSV's set
    system. Results stream out in completion order (the ``tag`` ties
    them back), one flushed JSON line each, so an interrupted batch
    keeps everything that finished. Exit code is 0 when every request
    produced a verified result (``ok`` or ``fallback``), 3 otherwise.
    """
    from repro.patterns.pattern_sets import build_set_system
    from repro.resilience.pool import PoolConfig, SolverPool

    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    cost_name = args.cost or ("max" if args.measure else "count")
    system = build_set_system(table, get_cost_function(cost_name))

    out_stream = (
        sys.stdout if args.out is None else open(args.out, "w")
    )

    def emit(payload: dict) -> None:
        out_stream.write(json.dumps(payload) + "\n")
        out_stream.flush()

    failed = 0
    requests = []
    try:
        in_stream = (
            sys.stdin if args.requests == "-" else open(args.requests)
        )
        try:
            for lineno, line in enumerate(in_stream, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    requests.append(_batch_request(system, line, lineno))
                except (KeyError, TypeError, ValueError) as error:
                    failed += 1
                    emit(
                        {
                            "tag": f"line-{lineno}",
                            "status": "invalid",
                            "error": str(error) or repr(error),
                        }
                    )
        finally:
            if in_stream is not sys.stdin:
                in_stream.close()

        from repro.obs.metrics import record_cover_result

        def on_result(outcome) -> None:
            nonlocal failed
            if outcome.status == "failed":
                failed += 1
            payload = {"tag": outcome.tag, "status": outcome.status}
            if outcome.result is not None:
                record_cover_result(outcome.result)
                payload["result"] = outcome.result.to_dict()
                resilience = outcome.result.params.get("resilience")
                if resilience is not None:
                    payload["resilience"] = resilience
            payload["pool"] = outcome.provenance
            emit(payload)

        config = PoolConfig(
            workers=args.workers,
            memory_limit_mb=args.memory_limit,
            request_timeout=args.timeout,
        )
        with SolverPool(config) as pool:
            pool.run(requests, on_result=on_result)
            breakers = pool.breaker_snapshot()
    finally:
        if out_stream is not sys.stdout:
            out_stream.close()
    print(
        f"batch: {len(requests)} request(s) run, {failed} failed"
        + (
            f"; breakers tripped: "
            f"{[n for n, b in breakers.items() if b['times_opened']]}"
            if any(b["times_opened"] for b in breakers.values())
            else ""
        ),
        file=sys.stderr,
    )
    return 0 if failed == 0 else 3


def _batch_request(system, line: str, lineno: int):
    """Parse one ``scwsc batch`` input line into a pool request."""
    from repro.resilience.pool import SolveRequest

    spec = json.loads(line)
    if not isinstance(spec, dict):
        raise ValueError(
            f"expected a JSON object, got {type(spec).__name__}"
        )
    chain = spec.get("chain")
    return SolveRequest(
        system=system,
        k=int(spec["k"]),
        s_hat=float(spec["s"]),
        solver=str(spec.get("solver", "resilient")),
        chain=tuple(chain) if chain else None,
        timeout=spec.get("timeout"),
        stage_options=spec.get("stage_options"),
        options=spec.get("options"),
        seed=int(spec.get("seed", 0)),
        tag=str(spec.get("tag", f"line-{lineno}")),
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    """``scwsc trace summarize|validate|flamegraph`` over a JSONL trace."""
    if args.trace_command == "validate":
        from repro.obs.schema import validate_trace_file

        problems = validate_trace_file(
            args.path, strict=getattr(args, "strict", False)
        )
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        if problems:
            return ValidationError.exit_code
        print(f"{args.path}: ok")
        return 0
    if args.trace_command == "flamegraph":
        from repro.obs.profile import collapsed_stacks
        from repro.obs.report import load_trace

        lines = collapsed_stacks(load_trace(args.path))
        body = "\n".join(lines) + ("\n" if lines else "")
        if args.output is None:
            sys.stdout.write(body)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(body)
            print(
                f"flamegraph: {len(lines)} stack(s) written to "
                f"{args.output}",
                file=sys.stderr,
            )
        return 0
    from repro.obs.report import summarize_file

    print(summarize_file(args.path, as_json=getattr(args, "as_json", False)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.patterns.stats import profile_table

    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    print(profile_table(table).render())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis import compare_algorithms
    from repro.datasets.registry import load_dataset
    from repro.patterns.stats import profile_table

    table = load_dataset(args.dataset)
    print(f"dataset {args.dataset}:")
    print(profile_table(table).render())
    print(
        f"\ncomparing algorithms (k={args.k}, s={args.coverage:g}):"
    )
    comparison = compare_algorithms(
        table,
        args.k,
        args.coverage,
        include_unoptimized=args.unoptimized,
        include_lp_bound=args.unoptimized,
    )
    print(comparison.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace_file is not None:
        return _cmd_report_dashboard(args)
    lines = [
        "# Size-Constrained Weighted Set Cover — regenerated artifacts",
        "",
        f"Scale: `{args.scale}`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each shape.",
        "",
    ]
    for experiment_id in available_experiments():
        report = run_experiment(experiment_id, scale=args.scale)
        lines.append(f"## {report.title} ({experiment_id})")
        lines.append("")
        lines.append("```")
        lines.append(report.text)
        lines.append("```")
        lines.append("")
    output = "\n".join(lines)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    else:
        print(output)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``scwsc serve``: boot the daemon and block until SIGTERM/SIGINT."""
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        memory_limit_mb=args.memory_limit,
        max_inflight=args.max_inflight,
        max_queue_depth=args.queue_depth,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_max_inflight=args.tenant_inflight,
        read_timeout=args.read_timeout,
        grace=args.grace,
        drain_timeout=args.drain_timeout,
        access_log=args.access_log,
        slo_latency_threshold=args.slo_latency_threshold,
        slo_latency_objective=args.slo_latency_objective,
        slo_error_objective=args.slo_error_objective,
        flightrec=not args.no_flightrec,
        debug_endpoints=not args.no_debug_endpoints,
        postmortem_dir=args.postmortem_dir,
        postmortem_interval=args.postmortem_interval,
        postmortem_max_bytes=args.postmortem_max_bytes,
        postmortem_max_bundles=args.postmortem_max_bundles,
        sampler_hz=args.sampler_hz,
    )
    return run_server(config)


def _cmd_debug(args: argparse.Namespace) -> int:
    """``scwsc debug bundle|inspect|validate`` over postmortem bundles."""
    import json as json_module

    from repro.obs import flightrec as obs_flightrec
    from repro.obs.postmortem import (
        build_bundle,
        redact_bundle,
        validate_bundle,
        validate_bundle_file,
    )

    if args.debug_command == "bundle":
        recorder = obs_flightrec.get_recorder()
        if recorder is None:
            # A CLI process has no serve daemon behind it; the manual
            # bundle still captures this process's stacks, metrics, and
            # build info — and exercises the full bundle pipeline.
            recorder = obs_flightrec.FlightRecorder()
        bundle = build_bundle(
            recorder, trigger="manual", reason=args.reason
        )
        if not args.no_redact:
            bundle = redact_bundle(bundle)
        problems = validate_bundle(bundle)
        if problems:
            for problem in problems:
                print(f"debug bundle: {problem}", file=sys.stderr)
            return ValidationError.exit_code
        with open(args.output, "w", encoding="utf-8") as handle:
            json_module.dump(bundle, handle, indent=2, default=str)
            handle.write("\n")
        print(f"debug: bundle written to {args.output}")
        return 0

    if args.debug_command == "validate":
        status = 0
        for path in args.paths:
            try:
                bundle = validate_bundle_file(path)
            except (OSError, ValidationError) as error:
                print(f"{path}: {error}", file=sys.stderr)
                status = ValidationError.exit_code
                continue
            print(f"{path}: ok (trigger={bundle['trigger']})")
        return status

    # inspect
    bundle = validate_bundle_file(args.path)
    bundle = redact_bundle(bundle)
    if args.as_json:
        print(json_module.dumps(bundle, indent=2, default=str))
        return 0
    import datetime

    created = datetime.datetime.fromtimestamp(
        bundle["created_unix"], tz=datetime.timezone.utc
    )
    build = bundle["build"]
    print(f"postmortem bundle: {args.path}")
    print(f"  trigger   {bundle['trigger']}: {bundle['reason']}")
    print(f"  created   {created.isoformat()}")
    print(
        f"  build     scwsc {build['version']} / python {build['python']} "
        f"/ backend {build['backend']}"
    )
    if bundle.get("context"):
        print(f"  context   {json_module.dumps(bundle['context'], default=str)}")
    print("  rings:")
    for name, ring in bundle["rings"].items():
        print(
            f"    {name:<8} {len(ring['records'])} record(s) "
            f"(capacity {ring['capacity']}, dropped {ring['dropped']})"
        )
    workers = bundle.get("workers") or {}
    if workers:
        print("  worker rings:")
        for index, ring in sorted(workers.items()):
            last = ring[-1]["name"] if ring else "-"
            print(f"    worker {index}: {len(ring)} record(s), last={last}")
    events = bundle["rings"]["events"]["records"]
    if events:
        print("  last events:")
        for record in events[-10:]:
            print(f"    t={record.get('t')} {record.get('name')}")
    collapsed = bundle["stacks"].get("collapsed") or []
    if collapsed:
        print("  hottest stacks:")
        for line in collapsed[:5]:
            print(f"    {line}")
    return 0


def _cmd_report_dashboard(args: argparse.Namespace) -> int:
    """``scwsc report TRACE [-o report.html]``: the HTML run dashboard."""
    from pathlib import Path

    from repro.bench import DEFAULT_HISTORY
    from repro.obs.dashboard import load_history, render_dashboard
    from repro.obs.report import load_trace

    records = load_trace(args.trace_file)
    history_path = args.history or str(DEFAULT_HISTORY)
    history = load_history(history_path)
    postmortems = _load_postmortems(args.postmortem)
    html = render_dashboard(
        records, history, title=args.title, postmortems=postmortems
    )
    Path(args.output).write_text(html, encoding="utf-8")
    print(
        f"report: dashboard written to {args.output} "
        f"({len(records)} trace record(s), {len(history)} bench run(s), "
        f"{len(postmortems)} postmortem(s))",
        file=sys.stderr,
    )
    return 0


def _load_postmortems(paths: list[str] | None) -> list[dict]:
    """Load ``--postmortem`` arguments: bundle files or spool dirs.

    Unreadable/invalid bundles are reported and skipped — a dashboard
    render must not fail because one incident artifact is corrupt.
    """
    import json as json_module
    from pathlib import Path

    if not paths:
        return []
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("postmortem-*.json")))
        else:
            files.append(path)
    bundles: list[dict] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                bundle = json_module.load(handle)
        except (OSError, ValueError) as error:
            print(f"report: skipping {path}: {error}", file=sys.stderr)
            continue
        if isinstance(bundle, dict):
            bundle.setdefault("_source", str(path))
            bundles.append(bundle)
    return bundles


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
