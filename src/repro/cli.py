"""Command-line interface.

Three subcommands:

* ``list`` — show the available paper experiments;
* ``run`` — regenerate a paper table/figure (or ``all`` of them), with
  per-cell checkpointing and ``--resume`` for interrupted sweeps;
* ``solve`` — run size-constrained weighted set cover on a CSV of
  records, optionally under a ``--timeout`` and/or resilient
  ``--fallback`` chain (see docs/RESILIENCE.md).

Examples::

    scwsc list
    scwsc run fig5 --scale full
    scwsc run table4 --scale small --resume
    scwsc solve data.csv --attributes Type,Location --measure Cost \\
        -k 2 -s 0.5625 --algorithm cwsc
    scwsc solve data.csv --attributes Type,Location -k 2 -s 0.5 \\
        --timeout 5 --fallback exact,cwsc,universal

Failures map to documented exit codes (see :mod:`repro.errors`): 2 for
bad input, 3 for infeasible, 4 for a blown deadline, 5 for an
intractable pattern space, 6 for a transient backend failure; the
message goes to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError, ValidationError
from repro.experiments import available_experiments, run_experiment
from repro.patterns.costs import get_cost_function
from repro.patterns.optimized_cmc import optimized_cmc
from repro.patterns.optimized_cwsc import optimized_cwsc
from repro.patterns.table import PatternTable


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scwsc",
        description=(
            "Size-Constrained Weighted Set Cover (Golab et al., ICDE 2015) "
            "— reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available paper experiments")

    run_parser = commands.add_parser(
        "run", help="regenerate a paper table/figure"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from `scwsc list`, or `all`",
    )
    run_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale (default: full)",
    )
    run_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the report to a file",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the experiment's checkpoint instead of "
        "recomputing completed cells",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default=".scwsc-checkpoints",
        help="directory for per-experiment checkpoint files "
        "(default: .scwsc-checkpoints)",
    )
    run_parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable checkpoint snapshots entirely",
    )

    solve_parser = commands.add_parser(
        "solve", help="solve an instance from a CSV of records"
    )
    solve_parser.add_argument("csv", help="input CSV with a header row")
    solve_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    solve_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column for pattern costs (omit for count-based costs)",
    )
    solve_parser.add_argument(
        "-k", type=int, required=True, help="maximum number of patterns"
    )
    solve_parser.add_argument(
        "-s",
        "--coverage",
        type=float,
        required=True,
        help="required coverage fraction in [0, 1]",
    )
    solve_parser.add_argument(
        "--algorithm",
        choices=("cwsc", "cmc", "exact"),
        default="cwsc",
        help="cwsc: at most k patterns; cmc: up to (1+eps)k with bounds; "
        "exact: branch-and-bound optimum (small inputs only)",
    )
    solve_parser.add_argument(
        "--cost",
        default=None,
        help="cost function: max (default with a measure), sum, mean, "
        "count, l2",
    )
    solve_parser.add_argument(
        "-b", type=float, default=1.0, help="CMC budget growth factor"
    )
    solve_parser.add_argument(
        "--eps", type=float, default=1.0, help="CMC solution-size slack"
    )
    solve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock budget in seconds; the solve degrades through "
        "the resilient fallback chain instead of overrunning",
    )
    solve_parser.add_argument(
        "--fallback",
        nargs="?",
        const="default",
        default=None,
        metavar="CHAIN",
        help="solve via the resilient fallback chain; optionally a "
        "comma-separated stage list (exact, lp_rounding, cwsc, cmc, "
        "cmc_epsilon, universal). Bare --fallback uses the default "
        "chain",
    )
    solve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON instead of text",
    )
    solve_parser.add_argument(
        "--sql",
        action="store_true",
        help="also print the solution as a SQL query over the input",
    )

    info_parser = commands.add_parser(
        "info", help="profile a CSV: domains, skew, pattern space"
    )
    info_parser.add_argument("csv", help="input CSV with a header row")
    info_parser.add_argument(
        "--attributes",
        required=True,
        help="comma-separated pattern attribute columns",
    )
    info_parser.add_argument(
        "--measure",
        default=None,
        help="numeric column to profile as the measure",
    )

    demo_parser = commands.add_parser(
        "demo",
        help="run the algorithms on a bundled synthetic dataset",
    )
    demo_parser.add_argument(
        "--dataset",
        default="lbl:5000",
        help="name[:rows][@seed]; names: lbl, census, entities "
        "(default: lbl:5000)",
    )
    demo_parser.add_argument(
        "-k", type=int, default=8, help="maximum number of patterns"
    )
    demo_parser.add_argument(
        "-s", "--coverage", type=float, default=0.4,
        help="required coverage fraction",
    )
    demo_parser.add_argument(
        "--unoptimized",
        action="store_true",
        help="also run the enumeration-based algorithms and the LP bound",
    )

    report_parser = commands.add_parser(
        "report",
        help="run every experiment and emit a markdown report",
    )
    report_parser.add_argument(
        "--scale",
        choices=("small", "full"),
        default="full",
        help="workload scale (default: full)",
    )
    report_parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="write the markdown to a file instead of stdout",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_solve(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    except OSError as error:
        # Unreadable/unwritable input or output file: bad input.
        print(f"error: {error}", file=sys.stderr)
        return ValidationError.exit_code


def _cmd_list() -> int:
    for experiment_id, description in available_experiments().items():
        print(f"{experiment_id:16s} {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.base import CheckpointStore

    ids = (
        list(available_experiments())
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks = []
    for experiment_id in ids:
        store = None
        if not args.no_checkpoint:
            path = (
                Path(args.checkpoint_dir)
                / f"{experiment_id}-{args.scale}.json"
            )
            store = CheckpointStore(path)
            if args.resume:
                if len(store):
                    print(
                        f"resuming {experiment_id} from {path} "
                        f"({len(store)} cell(s) done)",
                        file=sys.stderr,
                    )
            else:
                store.clear()
        report = run_experiment(
            experiment_id, scale=args.scale, checkpoint=store
        )
        chunks.append(report.text)
    output = "\n\n".join(chunks)
    print(output)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    cost_name = args.cost or ("max" if args.measure else "count")
    cost = get_cost_function(cost_name)
    if args.fallback is not None or args.timeout is not None:
        result = _solve_resilient(args, table, cost)
    elif args.algorithm == "cwsc":
        result = optimized_cwsc(
            table, args.k, args.coverage, cost=cost,
            on_infeasible="full_cover",
        )
    elif args.algorithm == "exact":
        from repro.core.exact import solve_exact
        from repro.core.preprocess import remove_dominated
        from repro.patterns.pattern_sets import build_set_system

        system = remove_dominated(build_set_system(table, cost))
        result = solve_exact(system, args.k, args.coverage)
    else:
        result = optimized_cmc(
            table, args.k, args.coverage, b=args.b, cost=cost, eps=args.eps
        )
    provenance = result.params.get("resilience")
    if args.json:
        payload = result.to_dict()
        if provenance is not None:
            payload["resilience"] = provenance
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary())
    for pattern in result.labels:
        print(f"  {pattern.format(attributes)}")
    if provenance is not None:
        print(f"resilience: answered by stage {provenance['stage']!r}")
        for record in provenance["stages"]:
            line = f"  {record['stage']:12s} {record['status']}"
            if record["detail"]:
                line += f" ({record['detail']})"
            print(line)
    if args.sql:
        from repro.patterns.sql import solution_to_sql

        print()
        print(solution_to_sql(result, attributes, table_name="records"))
    return 0


def _solve_resilient(args: argparse.Namespace, table, cost):
    """``scwsc solve`` under the resilient harness (--timeout/--fallback).

    Runs on the fully enumerated set system so every chain stage is
    available; infeasible outcomes surface as :class:`InfeasibleError`
    (exit code 3), blown overall deadlines as partial degradation inside
    the chain rather than a crash.
    """
    from repro.patterns.pattern_sets import build_set_system
    from repro.resilience import DEFAULT_CHAIN, resilient_solve

    if args.fallback is None or args.fallback == "default":
        chain = {
            "cwsc": ("cwsc", "universal"),
            "cmc": ("cmc_epsilon", "universal"),
            "exact": ("exact", "cwsc", "universal"),
        }[args.algorithm] if args.fallback is None else DEFAULT_CHAIN
    else:
        chain = tuple(
            name.strip() for name in args.fallback.split(",") if name.strip()
        )
    system = build_set_system(table, cost)
    return resilient_solve(
        system,
        args.k,
        args.coverage,
        chain=chain,
        timeout=args.timeout,
        stage_options={
            "cmc": {"b": args.b},
            "cmc_epsilon": {"b": args.b, "eps": args.eps},
        },
        on_failure="raise",
    )


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.patterns.stats import profile_table

    attributes = [name.strip() for name in args.attributes.split(",")]
    table = PatternTable.from_csv(
        args.csv, attributes, measure_name=args.measure
    )
    print(profile_table(table).render())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis import compare_algorithms
    from repro.datasets.registry import load_dataset
    from repro.patterns.stats import profile_table

    table = load_dataset(args.dataset)
    print(f"dataset {args.dataset}:")
    print(profile_table(table).render())
    print(
        f"\ncomparing algorithms (k={args.k}, s={args.coverage:g}):"
    )
    comparison = compare_algorithms(
        table,
        args.k,
        args.coverage,
        include_unoptimized=args.unoptimized,
        include_lp_bound=args.unoptimized,
    )
    print(comparison.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    lines = [
        "# Size-Constrained Weighted Set Cover — regenerated artifacts",
        "",
        f"Scale: `{args.scale}`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each shape.",
        "",
    ]
    for experiment_id in available_experiments():
        report = run_experiment(experiment_id, scale=args.scale)
        lines.append(f"## {report.title} ({experiment_id})")
        lines.append("")
        lines.append("```")
        lines.append(report.text)
        lines.append("```")
        lines.append("")
    output = "\n".join(lines)
    if args.out is not None:
        with args.out as handle:
            handle.write(output + "\n")
    else:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
