"""Facility planning: choose at most k facility groups covering a city.

The paper's Introduction motivates the problem with facility location: a
city must place hospitals so that a desired fraction of the population is
close to one, subject to a construction budget and zoning limits on how
many projects (k) can run.

We model city blocks as records over (district, zoning type, density
band); a *pattern* such as ``district=North, zone=ALL, density=high``
stands for one construction program serving every matching block. The
program's cost is the priciest block it must reach (``max`` of the land
price measure), which is what the procurement contract gets signed at.

Run:  python examples/facility_planning.py
"""

import numpy as np

from repro import PatternTable, optimized_cwsc, solve_exact
from repro.patterns.pattern_sets import build_set_system

DISTRICTS = ("North", "South", "East", "West", "Center")
ZONES = ("residential", "commercial", "industrial", "mixed")
DENSITY = ("high", "medium", "low")


def build_city(n_blocks: int = 600, seed: int = 5) -> PatternTable:
    """Synthetic city: land price depends on district and density."""
    rng = np.random.default_rng(seed)
    district_premium = {
        "Center": 3.0, "North": 1.6, "West": 1.2, "East": 0.9, "South": 0.7,
    }
    density_premium = {"high": 2.0, "medium": 1.0, "low": 0.5}
    rows = []
    prices = []
    for _ in range(n_blocks):
        district = DISTRICTS[rng.integers(len(DISTRICTS))]
        zone = ZONES[rng.integers(len(ZONES))]
        density = DENSITY[rng.integers(len(DENSITY))]
        rows.append((district, zone, density))
        base = rng.lognormal(mean=0.0, sigma=0.4)
        prices.append(
            round(
                10.0 * base
                * district_premium[district]
                * density_premium[density],
                2,
            )
        )
    return PatternTable(
        attributes=("district", "zone", "density"),
        rows=rows,
        measure=prices,
        measure_name="land_price",
    )


def main() -> None:
    city = build_city()
    print(f"city blocks: {city}")
    k, coverage = 4, 0.6

    print(
        f"\nPlan: at most {k} construction programs reaching "
        f"{coverage:.0%} of blocks, minimizing summed contract prices.\n"
    )
    plan = optimized_cwsc(city, k=k, s_hat=coverage)
    print(plan.summary())
    for pattern in plan.labels:
        print(f"  program: {pattern.format(city.attributes)}")

    # On a down-sampled city the exact optimum is computable; compare.
    sample = city.sample(60, seed=1)
    system = build_set_system(sample, "max")
    greedy = optimized_cwsc(sample, k=3, s_hat=0.5)
    optimum = solve_exact(system, k=3, s_hat=0.5)
    gap = greedy.total_cost / optimum.total_cost
    print(
        f"\nsanity on a 60-block sample: greedy={greedy.total_cost:.2f} "
        f"vs optimal={optimum.total_cost:.2f} ({gap:.2f}x)"
    )


if __name__ == "__main__":
    main()
