"""Incremental maintenance: keep a summary valid as records arrive.

The paper's Section VII names the incremental variant — "the solution
must be continuously maintained as new elements arrive" — as future work;
:class:`repro.extensions.IncrementalCWSC` implements it. This example
streams a connection trace in batches and shows how often the maintainer
can keep its patterns, patch them with a spare pick, or must recompute.

Run:  python examples/streaming_maintenance.py
"""

from repro.datasets import lbl_trace
from repro.extensions import IncrementalCWSC


def main() -> None:
    base = lbl_trace(2_000, seed=61)
    maintainer = IncrementalCWSC(base, k=8, s_hat=0.4)
    start = maintainer.current_result()
    print(f"initial solution on {base.n_rows} records:")
    print(f"  {start.summary()}")

    for batch_id in range(6):
        batch = lbl_trace(700, seed=100 + batch_id)
        result = maintainer.add_records(batch)
        stats = maintainer.stats
        print(
            f"batch {batch_id + 1}: n={maintainer.table.n_rows:5d}  "
            f"coverage={result.coverage_fraction:.1%}  "
            f"cost={result.total_cost:9.2f}  "
            f"kept/repaired/recomputed="
            f"{stats.kept}/{stats.repaired}/{stats.recomputed}"
        )
        assert result.feasible

    print("\nfinal patterns:")
    for pattern in maintainer.patterns:
        print(f"  {pattern.format(maintainer.table.attributes)}")
    print(
        f"\nmaintenance work: {stats.metrics.sets_considered} patterns "
        f"considered across {stats.batches} batches"
    )


if __name__ == "__main__":
    main()
