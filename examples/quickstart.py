"""Quickstart: size-constrained weighted set cover in five minutes.

Covers both halves of the library:

1. the core API on an arbitrary weighted set system, and
2. the patterned special case on the paper's own Table I example —
   16 entities over (Type, Location) with a Cost measure.

Run:  python examples/quickstart.py
"""

from repro import SetSystem, cwsc, optimized_cwsc, solve_exact
from repro.datasets import entities_table


def core_api() -> None:
    print("=" * 64)
    print("1. Core API: arbitrary weighted sets")
    print("=" * 64)

    # Eight elements; two cheap halves, one expensive blanket set and a
    # tiny set that is never worth picking.
    system = SetSystem.from_iterables(
        n_elements=8,
        benefits=[
            {0, 1, 2, 3},
            {4, 5, 6, 7},
            set(range(8)),
            {0},
        ],
        costs=[1.0, 1.0, 10.0, 0.1],
        labels=["west-half", "east-half", "everything", "tiny"],
    )

    # Cover everything with at most two sets, as cheaply as possible.
    result = cwsc(system, k=2, s_hat=1.0)
    print(result.summary())
    for label in result.labels:
        print(f"  picked: {label}")

    # The exact optimum agrees here (and is available for small inputs).
    optimum = solve_exact(system, k=2, s_hat=1.0)
    print(f"exact optimum cost: {optimum.total_cost:g}")
    assert result.total_cost == optimum.total_cost


def patterned_api() -> None:
    print()
    print("=" * 64)
    print("2. Patterned API: the paper's Table I entities")
    print("=" * 64)

    table = entities_table()
    print(f"data: {table}")

    # Ask for 9 of the 16 entities with at most 2 patterns. The lattice-
    # optimized CWSC never enumerates all 24 patterns of Table II.
    result = optimized_cwsc(table, k=2, s_hat=9 / 16)
    print(result.summary())
    for pattern in result.labels:
        print(f"  picked: {pattern.format(table.attributes)}")
    print(
        f"patterns considered: {result.metrics.sets_considered} "
        "(out of 24 that exist)"
    )


if __name__ == "__main__":
    core_api()
    patterned_api()
