"""Explain a summary: saturation curves and redundancy pruning.

Two post-hoc tools for working with a computed cover:

* :func:`repro.analysis.selection_curve` shows how coverage and cost
  accumulate selection by selection ("the first two patterns already
  cover 80% of the target");
* :func:`repro.core.prune_redundant` drops sets made redundant by later
  selections, often shaving cost off greedy output for free.

Run:  python examples/explain_summary.py
"""

from repro import cwsc
from repro.analysis import selection_curve
from repro.core import prune_redundant
from repro.datasets.census import census_table
from repro.patterns.pattern_sets import build_set_system


def main() -> None:
    table = census_table(3_000, seed=23)
    system = build_set_system(table, "max")
    k, coverage = 8, 0.6

    result = cwsc(system, k=k, s_hat=coverage, on_infeasible="full_cover")
    print(result.summary())

    print("\nselection curve (cumulative):")
    print(f"{'pattern':>52}  {'+rows':>6}  {'cover':>7}  {'cost':>8}")
    for step in selection_curve(system, result):
        pattern = step["label"].format(table.attributes)
        print(
            f"{pattern:>52.52}  {step['marginal_covered']:6d}  "
            f"{step['coverage_fraction']:7.1%}  {step['cost']:8.1f}"
        )

    pruned = prune_redundant(system, result, s_hat=coverage)
    saved = result.total_cost - pruned.total_cost
    print(
        f"\nafter pruning: {pruned.n_sets} sets "
        f"(was {result.n_sets}), cost {pruned.total_cost:.1f} "
        f"(saved {saved:.1f})"
    )


if __name__ == "__main__":
    main()
