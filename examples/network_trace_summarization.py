"""Summarize a network connection trace with a handful of patterns.

This is the paper's evaluation scenario: given TCP connection records
with categorical attributes (protocol, hosts, end state, flags) and a
session-length measure, find at most ``k`` patterns that together match a
target fraction of the connections while keeping the summed pattern cost
(the worst session length each pattern admits) low.

Run:  python examples/network_trace_summarization.py
"""

from repro import optimized_cmc, optimized_cwsc
from repro.datasets import lbl_trace


def main() -> None:
    trace = lbl_trace(20_000, seed=11)
    print(f"trace: {trace}")
    k, coverage = 8, 0.4

    print(f"\nGoal: cover {coverage:.0%} of connections with <= {k} patterns")

    print("\n--- CWSC (hard size bound, no cost guarantee) ---")
    concise = optimized_cwsc(trace, k=k, s_hat=coverage)
    print(concise.summary())
    for pattern in concise.labels:
        print(f"  {pattern.format(trace.attributes)}")
    print(f"  patterns considered: {concise.metrics.sets_considered}")

    print("\n--- CMC (provable cost bound, up to (1+eps)k patterns) ---")
    cheap = optimized_cmc(trace, k=k, s_hat=coverage, b=1.0, eps=1.0)
    print(cheap.summary())
    for pattern in cheap.labels:
        print(f"  {pattern.format(trace.attributes)}")
    print(
        f"  budget rounds: {cheap.metrics.budget_rounds}, "
        f"patterns considered: {cheap.metrics.sets_considered}"
    )

    print(
        "\nReading the output: each pattern is a conjunctive rule; "
        "ALL-positions are wildcards. The cost of a pattern is the "
        "longest session it matches, so a cheap summary avoids lumping "
        "long-lived bulk transfers in with short request/response "
        "traffic."
    )


if __name__ == "__main__":
    main()
