"""Marketing campaigns with two weights: spend vs. brand-risk.

The paper's Section VII asks "how to handle multiple weights associated
with each set"; :mod:`repro.extensions.multiweight` answers with
scalarization and a Pareto sweep. Here each candidate campaign (a
channel/segment combination) reaches a set of customers and carries two
weights — media spend and a brand-risk score. We want at most k campaigns
reaching 70% of customers and the whole spend/risk trade-off curve.

Run:  python examples/marketing_campaigns.py
"""

import numpy as np

from repro.extensions import MultiWeightSetSystem, pareto_sweep

CHANNELS = ("tv", "search", "social", "email", "billboard")
SEGMENTS = ("students", "families", "retirees", "professionals")


def build_campaigns(n_customers: int = 400, seed: int = 3):
    rng = np.random.default_rng(seed)
    # Each customer belongs to one segment and is reachable by a random
    # subset of channels.
    segments = rng.integers(len(SEGMENTS), size=n_customers)
    reachable = rng.random((n_customers, len(CHANNELS))) < 0.45

    benefits = []
    weights = []
    labels = []
    for channel_id, channel in enumerate(CHANNELS):
        for segment_id, segment in enumerate(SEGMENTS):
            covered = {
                customer
                for customer in range(n_customers)
                if segments[customer] == segment_id
                and reachable[customer, channel_id]
            }
            if not covered:
                continue
            spend = round(float(len(covered)) * rng.uniform(0.5, 2.0), 1)
            risk = round(
                {"tv": 1.0, "search": 0.3, "social": 2.5,
                 "email": 0.8, "billboard": 1.5}[channel]
                * rng.uniform(0.8, 1.2),
                2,
            )
            benefits.append(covered)
            weights.append((spend, risk))
            labels.append(f"{channel}->{segment}")
    # A blanket campaign guarantees feasibility (the "full cover" set).
    benefits.append(set(range(n_customers)))
    weights.append((float(n_customers) * 3.0, 10.0))
    labels.append("tv->everyone")
    return MultiWeightSetSystem(
        n_customers, benefits, weights,
        weight_names=("spend", "risk"), labels=labels,
    )


def main() -> None:
    system = build_campaigns()
    print(f"candidate campaigns: {system.n_sets}")

    grid = [(1.0, 0.0), (0.8, 0.2), (0.5, 0.5), (0.2, 0.8), (0.0, 1.0)]
    frontier = pareto_sweep(system, k=6, s_hat=0.7, multiplier_grid=grid)

    print(f"\nPareto frontier (k=6 campaigns, 70% reach required):")
    print(f"{'spend':>10}  {'risk':>8}  campaigns")
    for point in frontier:
        names = ", ".join(str(label) for label in point.result.labels)
        print(
            f"{point.totals[0]:10.1f}  {point.totals[1]:8.2f}  {names}"
        )

    cheapest = frontier[0]
    safest = frontier[-1]
    print(
        f"\ncheapest plan spends {cheapest.totals[0]:.1f} at risk "
        f"{cheapest.totals[1]:.2f}; the safest spends "
        f"{safest.totals[0]:.1f} to get risk down to "
        f"{safest.totals[1]:.2f}."
    )


if __name__ == "__main__":
    main()
